#pragma once

// HealthMonitor — wfqd's degraded-mode state machine.
//
//     healthy ──store failure──▶ degraded ──backoff elapsed──▶ recovering
//        ▲                          ▲                              │
//        │                          └──────recovery failed─────────┤
//        └───────────────────────recovery succeeded────────────────┘
//
// The daemon starts healthy. When a store write fails structurally (the
// LogStore poisons itself), the ingest path calls degrade(): reads keep
// serving the last published snapshot, /ingest answers 503 + Retry-After,
// and this monitor's background thread starts probing recovery — calling
// the injected RecoverFn (which reopens the store through quarantine
// recovery and republishes the snapshot) under capped exponential backoff.
// Success returns the daemon to healthy and resets the backoff; failure
// doubles it up to `backoff_cap`. After `max_attempts` consecutive
// failures (0 = never) the monitor gives up and stays degraded — reads
// still work, an operator gets paged.
//
// Every transition fires the TransitionFn (wfqd logs it to the access log)
// and updates the wflog_server_health_* metrics. state() is cheap and
// lock-free — the ingest hot path checks it per request.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace wflog::server {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kRecovering = 2,
};

const char* to_string(HealthState state) noexcept;

struct HealthOptions {
  /// First retry delay after entering degraded; doubles per failure.
  std::chrono::milliseconds backoff_initial{100};
  /// Backoff ceiling.
  std::chrono::milliseconds backoff_cap{5000};
  /// Consecutive failed recoveries before giving up; 0 = retry forever.
  int max_attempts = 0;
};

struct HealthStats {
  HealthState state = HealthState::kHealthy;
  std::uint64_t transitions = 0;    // state changes since startup
  std::uint64_t degradations = 0;   // entries into degraded
  std::uint64_t attempts = 0;       // recovery probes launched
  std::uint64_t recoveries = 0;     // probes that succeeded
  bool gave_up = false;             // max_attempts exhausted
  std::string last_error;           // most recent degrade/probe failure
  /// Delay before the next probe — doubles as the Retry-After hint.
  std::chrono::milliseconds next_backoff{0};
};

class HealthMonitor {
 public:
  /// Attempts recovery; true on success, else false with *error filled.
  /// Runs on the monitor's background thread with no monitor lock held,
  /// so it may take as long as a store reopen takes.
  using RecoverFn = std::function<bool(std::string* error)>;
  /// Observes every state change (also lock-free of the monitor).
  using TransitionFn = std::function<void(HealthState from, HealthState to,
                                          const std::string& detail)>;

  HealthMonitor(HealthOptions options, RecoverFn recover,
                TransitionFn on_transition = nullptr);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// healthy → degraded; wakes the recovery thread. Idempotent: while
  /// already degraded/recovering only last_error is refreshed.
  void degrade(std::string reason);

  HealthState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  /// True iff writes may proceed (state == healthy).
  bool writable() const noexcept { return state() == HealthState::kHealthy; }

  HealthStats stats() const;

  /// Seconds (>= 1) a client should wait before retrying /ingest.
  int retry_after_seconds() const;

  /// Stops the recovery thread (joins; further degrade() calls still
  /// flip the state but nothing probes). Called by the destructor.
  void stop();

 private:
  void recovery_loop();
  /// Sets state + fires callback/metrics. `lock` must be held; it is
  /// released while the callback runs and re-acquired after.
  void transition_locked(std::unique_lock<std::mutex>& lock, HealthState to,
                         const std::string& detail);

  HealthOptions options_;
  RecoverFn recover_;
  TransitionFn on_transition_;

  std::atomic<HealthState> state_{HealthState::kHealthy};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool gave_up_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t degradations_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t recoveries_ = 0;
  int attempts_this_outage_ = 0;
  std::string last_error_;
  std::chrono::milliseconds backoff_{0};
  std::thread thread_;
};

}  // namespace wflog::server
