#pragma once

// HttpServer — wfqd's listener, worker pool, and admission control.
//
// Threading model: one accept thread + a fixed pool of `threads` workers
// sharing a BOUNDED connection queue. The unit of queued work is "one
// request on one connection": a worker pops a connection, serves at most
// one request, and (keep-alive) re-queues the connection — so N concurrent
// keep-alive clients round-robin fairly across a smaller pool instead of
// pinning workers. When the queue is full the accept loop answers a canned
// 503 with Retry-After and closes: load is shed at the door, bounded by
// queue_capacity + threads in-flight connections.
//
// Graceful shutdown (SIGINT/SIGTERM → request_shutdown(), signal-safe):
// the listener closes (new connections refused), queued-but-unstarted
// connections are closed, workers finish their in-flight request — a
// watchdog trips `drain_cancel` after drain_timeout_ms so a long
// evaluation returns its partial result instead of stalling exit — and
// wait() joins everything.
//
// The server is transport only: it owns no engine. Handlers are plain
// functions registered on a Router (handlers.h wires the query service).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "server/http.h"
#include "server/observer.h"
#include "server/pool.h"
#include "server/sockio.h"

namespace wflog::server {

/// Handlers receive the request plus its RequestContext (observer.h) and
/// fill in the pipeline slice of the latency breakdown; transport-only
/// handlers can ignore the context.
using Handler = std::function<HttpResponse(const HttpRequest&, RequestContext&)>;

/// Exact-match method+path routing; unknown path → 404, known path with
/// the wrong method → 405. Prefix routes (add_prefix) serve paths with a
/// trailing id segment like "/subscribe/{id}"; exact routes win first.
class Router {
 public:
  void add(std::string method, std::string path, Handler handler);
  /// Matches any target that starts with `prefix` (the handler reads the
  /// remainder from req.target). Checked after all exact routes.
  void add_prefix(std::string method, std::string prefix, Handler handler);
  HttpResponse dispatch(const HttpRequest& req, RequestContext& ctx) const;

 private:
  struct Route {
    std::string method;
    std::string path;
    Handler handler;
    bool prefix = false;
  };
  std::vector<Route> routes_;
};

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral: the OS picks, port() reports
  std::size_t threads = 4;
  std::size_t queue_capacity = 64;  // pending connections before 503
  int io_timeout_ms = 5000;         // reading one request / blocking write
  int idle_timeout_ms = 30000;      // keep-alive connection max idle
  int drain_timeout_ms = 2000;      // shutdown: in-flight grace period
  HttpLimits limits;
  /// Tripped when the drain grace period expires; handlers thread it into
  /// RunLimits so in-flight evaluations stop cooperatively.
  CancelToken drain_cancel = make_cancel_token();
  /// Borrowed request observer (rings, histograms, access log); null =
  /// request observability off. Must outlive the server.
  RequestObserver* observer = nullptr;
  /// Borrowed socket seam; null = real syscalls. Tests inject a
  /// FaultSocketIo here to script network failures. Must outlive the
  /// server.
  SocketIo* io = nullptr;
  /// Reserved-lane depth for liveness traffic (/healthz, /metrics) when
  /// the main queue is full; 0 disables the lane (full queue = plain 503
  /// for everyone, the pre-lane behavior).
  std::size_t lane_capacity = 16;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;        // responses written (any status)
  std::uint64_t rejected = 0;      // 503s shed at the door
  std::uint64_t bad_requests = 0;  // parse-level 4xx
  std::uint64_t dropped_responses = 0;  // slow-client read timeouts +
                                        // failed response writes
  std::uint64_t queue_depth = 0;   // connections waiting right now
  std::uint64_t lane_served = 0;   // liveness responses via the reserved
                                   // lane while the main queue was full
};

class HttpServer {
 public:
  HttpServer(Router router, ServerOptions options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept + worker threads. Throws
  /// IoError on bind/listen failure (e.g. port in use).
  void start();
  /// The actual bound port (after start(); resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Initiates graceful shutdown; safe from any thread AND from a signal
  /// handler (one atomic store + one pipe write).
  void request_shutdown() noexcept;
  /// Blocks until the server has fully drained and every thread joined.
  void wait();
  /// request_shutdown() + wait().
  void shutdown();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }
  const CancelToken& drain_token() const noexcept {
    return options_.drain_cancel;
  }
  ServerStats stats() const;

 private:
  /// One keep-alive connection riding the queue between requests; buf
  /// carries partial reads / pipelined bytes across re-queues.
  struct Conn {
    int fd = -1;
    std::string buf;
    std::chrono::steady_clock::time_point last_active;
    /// When this connection last entered the queue — pop-minus-enqueued
    /// is the request's queue-wait slice of the latency breakdown.
    std::chrono::steady_clock::time_point enqueued;
    /// Riding the reserved liveness lane: only /healthz and /metrics are
    /// served (anything else gets the 503 it would have gotten at the
    /// door), and the connection closes after one response so the lane
    /// stays free for the next probe.
    bool lane = false;
  };

  SocketIo& io() const noexcept {
    return options_.io != nullptr ? *options_.io : real_socket_io();
  }

  void accept_loop();
  void worker_loop();
  void lane_loop();
  /// Serves at most one request; true to re-queue (keep-alive).
  /// `queue_us` is how long the connection waited for this worker.
  bool serve_one(Conn& conn, double queue_us);
  HttpResponse dispatch_instrumented(const HttpRequest& req,
                                     RequestContext& ctx);
  void count_dropped(const HttpRequest* req, const HttpResponse* resp,
                     RequestContext& ctx, int status);

  Router router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::unique_ptr<BoundedQueue<Conn>> queue_;
  std::unique_ptr<BoundedQueue<Conn>> lane_queue_;  // null when lane off
  std::thread accept_thread_;
  std::thread lane_thread_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool joined_ = false;

  // Drain rendezvous: after shutdown begins, the accept thread doubles as
  // the watchdog — it waits here for the workers to finish and trips
  // drain_cancel if the grace period expires first.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool workers_done_ = false;

  mutable std::atomic<std::uint64_t> accepted_{0};
  mutable std::atomic<std::uint64_t> served_{0};
  mutable std::atomic<std::uint64_t> rejected_{0};
  mutable std::atomic<std::uint64_t> bad_requests_{0};
  mutable std::atomic<std::uint64_t> dropped_{0};
  mutable std::atomic<std::uint64_t> lane_served_{0};
  std::atomic<std::uint64_t> next_seq_{1};  // request ids: "wfq-<seq>"
};

}  // namespace wflog::server
