#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>

#include "server/json.h"
#include "server/sockio.h"

namespace wflog::server {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

std::optional<std::string> HttpRequest::query_param(
    std::string_view name) const {
  std::string_view rest = query_string;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (key != name) continue;
    return eq == std::string_view::npos ? std::string()
                                        : std::string(pair.substr(eq + 1));
  }
  return std::nullopt;
}

bool HttpRequest::keep_alive() const {
  const std::string connection = to_lower(header("connection"));
  if (connection.find("close") != std::string::npos) return false;
  if (version == "HTTP/1.0") {
    return connection.find("keep-alive") != std::string::npos;
  }
  return true;  // HTTP/1.1 default
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::error(int status, std::string_view message) {
  std::string body = "{\"error\":";
  json_append_quoted(body, message);
  body += "}";
  return json(status, std::move(body));
}

const char* status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

ParseState parse_request(std::string& buf, HttpRequest& out,
                         const HttpLimits& limits, std::string& error) {
  // Find the header/body boundary (tolerate LF-only clients).
  std::size_t header_end = buf.find("\r\n\r\n");
  std::size_t body_at = header_end + 4;
  if (header_end == std::string::npos) {
    header_end = buf.find("\n\n");
    body_at = header_end + 2;
  }
  if (header_end == std::string::npos) {
    if (buf.size() > limits.max_header_bytes) {
      error = "request headers exceed " +
              std::to_string(limits.max_header_bytes) + " bytes";
      return ParseState::kHeaderTooLarge;
    }
    return ParseState::kNeedMore;
  }
  if (header_end > limits.max_header_bytes) {
    error = "request headers exceed " +
            std::to_string(limits.max_header_bytes) + " bytes";
    return ParseState::kHeaderTooLarge;
  }

  HttpRequest req;

  // Request line.
  const std::string_view head(buf.data(), header_end);
  std::size_t line_end = head.find('\n');
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = trim(head.substr(0, line_end));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    error = "malformed request line";
    return ParseState::kBadRequest;
  }
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(trim(line.substr(sp2 + 1)));
  if (req.method.empty() || req.target.empty() ||
      req.version.rfind("HTTP/", 0) != 0) {
    error = "malformed request line";
    return ParseState::kBadRequest;
  }
  // Split off the query string: routing is path-only, but handlers may
  // consume parameters via query_param().
  const std::size_t qs = req.target.find('?');
  if (qs != std::string::npos) {
    req.query_string = req.target.substr(qs + 1);
    req.target.resize(qs);
  }

  // Header fields.
  std::size_t pos = line_end == head.size() ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view raw = head.substr(pos, eol - pos);
    pos = eol + 1;
    if (trim(raw).empty()) continue;
    const std::size_t colon = raw.find(':');
    if (colon == std::string_view::npos) {
      error = "malformed header field";
      return ParseState::kBadRequest;
    }
    std::string name = to_lower(trim(raw.substr(0, colon)));
    if (name.empty()) {
      error = "malformed header field";
      return ParseState::kBadRequest;
    }
    req.headers.emplace_back(std::move(name),
                             std::string(trim(raw.substr(colon + 1))));
  }

  // Body framing: Content-Length only.
  if (!req.header("transfer-encoding").empty()) {
    error = "chunked transfer encoding is not supported";
    return ParseState::kBadRequest;
  }
  std::size_t content_length = 0;
  const std::string_view cl = req.header("content-length");
  if (!cl.empty()) {
    const auto [ptr, ec] =
        std::from_chars(cl.data(), cl.data() + cl.size(), content_length);
    if (ec != std::errc{} || ptr != cl.data() + cl.size()) {
      error = "invalid content-length";
      return ParseState::kBadRequest;
    }
  }
  if (content_length > limits.max_body_bytes) {
    error = "request body of " + std::to_string(content_length) +
            " bytes exceeds limit of " +
            std::to_string(limits.max_body_bytes);
    return ParseState::kBodyTooLarge;
  }
  if (buf.size() < body_at + content_length) return ParseState::kNeedMore;

  req.body = buf.substr(body_at, content_length);
  buf.erase(0, body_at + content_length);
  out = std::move(req);
  return ParseState::kDone;
}

std::string serialize_response(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_reason(resp.status) + "\r\n";
  out += "content-type: " + resp.content_type + "\r\n";
  out += "content-length: " + std::to_string(resp.body.size()) + "\r\n";
  out += keep_alive ? "connection: keep-alive\r\n" : "connection: close\r\n";
  for (const auto& [k, v] : resp.extra_headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return out;
}

std::string serialize_stream_head(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_reason(resp.status) + "\r\n";
  out += "content-type: " + resp.content_type + "\r\n";
  out += "transfer-encoding: chunked\r\n";
  out += "connection: close\r\n";
  for (const auto& [k, v] : resp.extra_headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  return out;
}

bool ChunkedWriter::write_chunk(std::string_view payload) {
  if (failed_ || finished_) return false;
  if (payload.empty()) return true;  // a 0-chunk would end the stream
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                              payload.size());
  std::string frame;
  frame.reserve(static_cast<std::size_t>(n) + payload.size() + 2);
  frame.append(size_line, static_cast<std::size_t>(n));
  frame.append(payload);
  frame.append("\r\n");
  if (!send_all(*io_, fd_, frame)) {
    failed_ = true;
    return false;
  }
  bytes_ += payload.size();
  ++chunks_;
  return true;
}

bool ChunkedWriter::finish() {
  if (failed_ || finished_) return false;
  finished_ = true;
  if (!send_all(*io_, fd_, "0\r\n\r\n")) {
    failed_ = true;
    return false;
  }
  return true;
}

namespace {

// Consecutive EINTR/EAGAIN results tolerated on one logical operation.
// Real signals never approach this; an injected sticky storm hits the cap
// and surfaces as a normal IO failure instead of hanging a worker.
constexpr int kMaxTransientRetries = 1024;

bool transient(int err) { return err == EINTR || err == EAGAIN; }

}  // namespace

bool send_all(SocketIo& io, int fd, std::string_view data) {
  return send_all(io, fd, data, nullptr);
}

bool send_all(SocketIo& io, int fd, std::string_view data,
              std::size_t* written) {
  if (written != nullptr) *written = 0;
  int retries = 0;
  while (!data.empty()) {
    const long n = io.send(fd, data.data(), data.size());
    if (n < 0) {
      if (transient(errno) && ++retries < kMaxTransientRetries) continue;
      return false;
    }
    if (n == 0) return false;
    retries = 0;
    if (written != nullptr) *written += static_cast<std::size_t>(n);
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

long recv_some(SocketIo& io, int fd, std::string& buf, std::size_t max) {
  char tmp[16 * 1024];
  const std::size_t want = std::min(max, sizeof(tmp));
  int retries = 0;
  while (true) {
    const long n = io.recv(fd, tmp, want);
    if (n < 0) {
      if (transient(errno) && ++retries < kMaxTransientRetries) continue;
      return -1;
    }
    buf.append(tmp, static_cast<std::size_t>(n));
    return n;
  }
}

int poll_readable(SocketIo& io, int fd, int timeout_ms) {
  return io.poll_in(fd, timeout_ms);
}

bool send_all(int fd, std::string_view data) {
  return send_all(real_socket_io(), fd, data, nullptr);
}

bool send_all(int fd, std::string_view data, std::size_t* written) {
  return send_all(real_socket_io(), fd, data, written);
}

long recv_some(int fd, std::string& buf, std::size_t max) {
  return recv_some(real_socket_io(), fd, buf, max);
}

int poll_readable(int fd, int timeout_ms) {
  return poll_readable(real_socket_io(), fd, timeout_ms);
}

}  // namespace wflog::server
