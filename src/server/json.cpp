#include "server/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace wflog::server {
namespace {

/// Nesting cap: client-supplied documents must not be able to overflow the
/// parser's stack with ten thousand open brackets.
constexpr int kMaxDepth = 64;

/// Decodes one UTF-8 sequence starting at s[i]. On success returns its
/// length (1-4) and sets `cp`; returns 0 on any malformation — truncated
/// sequence, bad continuation byte, overlong encoding, surrogate code
/// point, or a value past U+10FFFF (RFC 3629). ASCII is the 1-byte case.
std::size_t decode_utf8(std::string_view s, std::size_t i,
                        std::uint32_t& cp) {
  const auto byte = [&](std::size_t k) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(s[k]));
  };
  const std::uint32_t b0 = byte(i);
  if (b0 < 0x80) {
    cp = b0;
    return 1;
  }
  std::size_t len = 0;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    return 0;  // continuation byte or 0xF8+ lead
  }
  if (i + len > s.size()) return 0;  // truncated
  for (std::size_t k = 1; k < len; ++k) {
    const std::uint32_t b = byte(i + k);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3F);
  }
  static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMin[len]) return 0;                  // overlong
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;    // surrogate half
  if (cp > 0x10FFFF) return 0;                   // past Unicode
  return len;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonMembers members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x80) {
          out.push_back(c);
          continue;
        }
        // Non-ASCII: require a well-formed UTF-8 sequence. Accepting raw
        // malformed bytes would store text the emitter cannot re-encode
        // as valid JSON — reject rather than corrupt (RFC 8259 §8.1).
        --pos_;
        std::uint32_t cp = 0;
        const std::size_t len = decode_utf8(text_, pos_, cp);
        if (len == 0) fail("invalid UTF-8 in string");
        out.append(text_.substr(pos_, len));
        pos_ += len;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: require the low half and combine.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // fall through: out of int64 range, keep it as a double
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue v) {
  kind_ = Kind::kObject;
  members_.emplace_back(std::move(key), std::move(v));
}

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      // Remaining control characters: \uXXXX per RFC 8259 §7.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(u));
      out += buf;
      ++i;
      continue;
    }
    if (u < 0x80) {
      out.push_back(c);
      ++i;
      continue;
    }
    // Non-ASCII: pass well-formed UTF-8 through verbatim; each malformed
    // byte becomes U+FFFD so the emitted document is always valid JSON
    // (the parser refuses such bytes on ingest, but strings can also
    // originate from CSV logs or stores the parser never saw).
    std::uint32_t cp = 0;
    const std::size_t len = decode_utf8(s, i, cp);
    if (len == 0) {
      out += "\xEF\xBF\xBD";
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  out.push_back('"');
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      out += std::to_string(int_);
      return;
    case Kind::kDouble:
      append_double(out, double_);
      return;
    case Kind::kString:
      json_append_quoted(out, string_);
      return;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out.push_back(',');
        first = false;
        json_append_quoted(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace wflog::server
