#pragma once

// ResultCache — wfqd's cross-request plan/result cache (the ROADMAP item
// "a cross-request plan/result cache keyed on canonical patterns + log
// version").
//
// Key structure (see ResultCache::key):
//
//   canonical_key(pattern)   Theorems 2-4 invariant — structurally
//                            different spellings of the same pattern share
//                            one entry (sound because equal keys imply
//                            equal incident sets on every log);
//   where fingerprint        binding names are deliberately NOT part of
//                            canonical_key (they never change a pattern's
//                            incidents) but they DO change what a where
//                            clause means, so queries with a where clause
//                            additionally key on the binding-carrying
//                            pattern text + the where expression text;
//   snapshot version         ingest publishes a new version; entries for
//                            old versions simply stop being looked up and
//                            age out of the LRU — no invalidation scan.
//
// Soundness rules (the "bugfix" half of the design):
//
//   * only COMPLETE results are cached: insert() refuses any result with
//     stop_reason != kNone or a non-empty error, so a deadline/budget/
//     cancel-truncated answer can never be replayed as if it were full;
//   * a hit is served only when the requester's effective RunLimits are at
//     least as permissive as those of the run that produced the entry — a
//     tighter deadline or incident budget might have truncated, and the
//     caller's stop_reason contract must not be silently upgraded.
//
// Structure: N shards, each `max_bytes / N` of budget with its own mutex,
// LRU list and key map — lookups on different shards never contend.
// Values are shared_ptr<const QueryResult>, so serving a hit is a refcount
// bump and eviction can proceed while a reader still renders the result.
//
// Metrics (registered lazily, obs/telemetry.h; names are Prometheus-ready):
//   wflog_server_cache_{hits,misses,insertions,evictions}_total (counters)
//   wflog_server_cache_bytes (gauge)

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace wflog::server {

struct CacheOptions {
  /// Total byte budget across all shards. 0 = cache disabled (every
  /// lookup misses, inserts are dropped).
  std::size_t max_bytes = 0;
  /// Number of independent LRU shards (clamped to >= 1).
  std::size_t shards = 8;
};

/// Point-in-time counters for /stats and tests.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Lookups that found an entry but refused it (tighter request limits).
  std::uint64_t limit_rejects = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t max_bytes = 0;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const noexcept { return options_.max_bytes > 0; }

  /// Cache key for a parsed query against snapshot `version`.
  static std::string key(const Query& q, std::uint64_t version);

  /// Returns the cached complete result, or nullptr on miss. `limits` are
  /// the requester's effective limits; an entry produced under tighter
  /// ones is not served (counted as limit_rejects + miss).
  std::shared_ptr<const QueryResult> lookup(const std::string& key,
                                            const RunLimits& limits);

  /// Stores a result produced under `limits`. Refuses (no-op) incomplete
  /// results (error or stop_reason != kNone), oversized entries, and
  /// everything when the cache is disabled.
  void insert(const std::string& key,
              std::shared_ptr<const QueryResult> result,
              const RunLimits& limits);

  /// Non-serving probe for incremental repair: returns the entry's result
  /// (and, when `producing_limits` is non-null, the limits it was produced
  /// under) WITHOUT touching the LRU order or the hit/miss counters, so a
  /// repair scan does not distort cache statistics. Nullptr when absent.
  std::shared_ptr<const QueryResult> peek(const std::string& key,
                                          RunLimits* producing_limits);

  CacheStats stats() const;

  /// Approximate retained bytes of one result (used for the budget).
  static std::size_t result_bytes(const QueryResult& r);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryResult> result;
    std::size_t bytes = 0;
    /// Effective limits of the producing run; 0 = unlimited.
    std::int64_t deadline_ms = 0;
    std::size_t max_incidents = 0;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t limit_rejects = 0;
  };

  Shard& shard_for(const std::string& key);
  void publish_bytes_metric() const;

  CacheOptions options_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wflog::server
