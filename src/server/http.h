#pragma once

// Minimal HTTP/1.1 message layer for wfqd — no external dependencies, just
// what a JSON query API needs:
//
//   * an INCREMENTAL request parser (parse_request) driven by the server's
//     read loop: feed it the connection buffer, get kDone / kNeedMore or a
//     typed error the caller maps to 400 / 413 / 431;
//   * a response serializer with explicit keep-alive control;
//   * tiny POSIX socket helpers (send_all / recv_some / poll_readable)
//     shared by the server and the blocking test client.
//
// Scope: Content-Length bodies only for *requests* (chunked uploads are
// rejected with 411/400 — a query payload has a known size); *responses*
// may stream with Transfer-Encoding: chunked via ChunkedWriter (standing
// queries, huge incident sets). No TLS, no compression. Header names are
// lowercased at parse time so lookups are case-blind.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wflog::server {

class SocketIo;
class ChunkedWriter;

/// Caps a client can hit; both map to a 4xx, never to unbounded memory.
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;   // uppercase, e.g. "POST"
  std::string target;   // request path (query string stripped), "/query"
  std::string query_string;  // raw text after '?', without the '?'
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered
  std::string body;

  /// First header with `name` (lowercase), or empty.
  std::string_view header(std::string_view name) const;
  /// Value of `name` in the query string ("a=1&b=2"); nullopt when absent,
  /// "" for a bare flag ("?stream"). No percent-decoding — wfqd's params
  /// are plain identifiers and integers.
  std::optional<std::string> query_param(std::string_view name) const;
  /// HTTP/1.1 default keep-alive, honoring "connection: close".
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  /// When set, the response streams: the server writes the head with
  /// Transfer-Encoding: chunked (ignoring `body`), hands the streamer a
  /// ChunkedWriter bound to the connection, and closes it afterwards —
  /// streamed responses never keep-alive. The streamer should stop writing
  /// once the writer reports failed() (client gone).
  std::function<void(ChunkedWriter&)> streamer;

  static HttpResponse json(int status, std::string body);
  static HttpResponse text(int status, std::string body);
  /// {"error": message} with the given status.
  static HttpResponse error(int status, std::string_view message);
};

const char* status_reason(int status) noexcept;

enum class ParseState : std::uint8_t {
  kDone,            // one full request extracted and consumed from `buf`
  kNeedMore,        // valid prefix; read more bytes
  kBadRequest,      // malformed request line / headers / length
  kHeaderTooLarge,  // headers exceed limits.max_header_bytes (431)
  kBodyTooLarge,    // declared body exceeds limits.max_body_bytes (413)
};

/// Attempts to extract one request from the front of `buf`. On kDone the
/// request's bytes are REMOVED from `buf` (pipelined followers stay) and
/// `out` is fully populated. On error, `error` explains for the response
/// body. Tolerates bare-LF line endings.
ParseState parse_request(std::string& buf, HttpRequest& out,
                         const HttpLimits& limits, std::string& error);

/// Serializes status line + headers + body, setting Content-Length and
/// Connection per `keep_alive`.
std::string serialize_response(const HttpResponse& resp, bool keep_alive);

/// Serializes only the head of a streamed response: status line + headers
/// with Transfer-Encoding: chunked and Connection: close, no body.
std::string serialize_stream_head(const HttpResponse& resp);

/// Emits HTTP/1.1 chunked transfer coding onto one connection: each
/// write_chunk() is one size-prefixed chunk (so one JSON object per chunk
/// is a natural framing for consumers), finish() writes the terminal
/// 0-chunk. Sticky on failure: the first failed send latches failed() and
/// every later call becomes a cheap no-op, so producers can keep a simple
/// loop and poll failed() to learn the client is gone.
class ChunkedWriter {
 public:
  ChunkedWriter(SocketIo& io, int fd) : io_(&io), fd_(fd) {}

  /// Writes one chunk; empty payloads are skipped (an empty chunk would
  /// terminate the stream). False once the connection has failed.
  bool write_chunk(std::string_view payload);
  /// Writes the terminal chunk. False if the connection already failed.
  bool finish();

  bool failed() const noexcept { return failed_; }
  bool finished() const noexcept { return finished_; }
  /// Payload bytes accepted so far (excludes chunk framing).
  std::size_t bytes_written() const noexcept { return bytes_; }
  std::size_t chunks_written() const noexcept { return chunks_; }

 private:
  SocketIo* io_;
  int fd_;
  bool failed_ = false;
  bool finished_ = false;
  std::size_t bytes_ = 0;
  std::size_t chunks_ = 0;
};

// ---- POSIX socket helpers (fd-based, used by server and client) ----------
//
// Each helper has two forms: one taking an explicit SocketIo seam (what the
// server and client use, so FaultSocketIo can script failures underneath),
// and the historical fd-only form that runs against real_socket_io().
// EINTR and EAGAIN are retried inside the helpers — but only a bounded
// number of consecutive times, so an injected sticky storm degrades to a
// clean failure instead of a spin.

class SocketIo;

/// Writes everything (MSG_NOSIGNAL; EINTR/EAGAIN retried, short writes
/// resumed). False on error/closed.
bool send_all(SocketIo& io, int fd, std::string_view data);
bool send_all(int fd, std::string_view data);
/// As above, reporting how many bytes actually reached the socket before
/// success/failure — lets a client distinguish "nothing was sent" (safe to
/// retry any request) from "the server may have seen part of it".
bool send_all(SocketIo& io, int fd, std::string_view data,
              std::size_t* written);
bool send_all(int fd, std::string_view data, std::size_t* written);
/// Reads once into `buf` (appending, up to `max`). Returns bytes read,
/// 0 on orderly close, -1 on error.
long recv_some(SocketIo& io, int fd, std::string& buf,
               std::size_t max = 64 * 1024);
long recv_some(int fd, std::string& buf, std::size_t max = 64 * 1024);
/// Waits until `fd` is readable. 1 = readable, 0 = timeout, -1 = error.
int poll_readable(SocketIo& io, int fd, int timeout_ms);
int poll_readable(int fd, int timeout_ms);

}  // namespace wflog::server
