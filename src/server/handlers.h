#pragma once

// QueryService — wfqd's application layer: owns the live log (a LogMonitor
// fed by POST /ingest, optionally mirrored into a durable LogStore) and a
// QueryEngine over the latest snapshot, and binds the HTTP endpoints:
//
//   POST /query    one pattern [+ where], per-request deadline/max-incidents
//                  mapped onto EvalGuard via RunLimits
//   POST /batch    N queries through run_batch (shared canonical subplans)
//   POST /ingest   append begin/record/end events (monitor bad-event policy;
//                  applied events are durably mirrored to the store)
//   GET  /metrics  Prometheus text of the ambient MetricsRegistry, plus the
//                  request observer's per-endpoint/per-pattern histograms
//   GET  /stats    engine + store + server counters as JSON
//   GET  /healthz  liveness ("ok", plain fast path) — readiness detail as
//                  JSON when the client sends Accept: application/json
//   GET  /version  build info (version, obs support, compiler)
//   GET  /debug/requests  last-N request summaries (request observer ring)
//   GET  /debug/slow      captured slow queries with plans + span summaries
//
// Concurrency model: queries share an immutable snapshot (shared_ptr<const
// State>) and run lock-free against it; ingest is serialized by a mutex,
// appends through the monitor + store, then atomically publishes a fresh
// snapshot. Readers in flight keep the old snapshot alive until they
// finish — no reader/writer blocking, no dangling Log references.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/monitor.h"
#include "log/store.h"
#include "server/cache.h"
#include "server/health.h"
#include "server/server.h"
#include "server/subscribe.h"

namespace wflog::server {

struct ServiceOptions {
  /// Engine-wide query options (optimize, eval semantics, ...). The
  /// deadline/max_incidents inside are NOT used directly — the per-request
  /// clamps below are.
  QueryOptions engine;

  /// Default and cap for per-request "deadline_ms". 0 default = no
  /// deadline unless the client asks; the cap bounds what a client may
  /// request (0 = uncapped).
  std::int64_t default_deadline_ms = 0;
  std::int64_t max_deadline_ms = 0;
  /// Same for "max_incidents".
  std::size_t default_max_incidents = 0;
  std::size_t max_incidents_cap = 0;
  /// Incident groups rendered per /query response unless the request sets
  /// "limit" (bounds response size, not evaluation).
  std::size_t default_render_limit = 1000;
  /// Threads handed to run_batch for /batch requests.
  std::size_t batch_threads = 1;
  /// Ingest feed behavior (monitor.h). kReject turns a bad event into a
  /// 400 aborting the rest of its request; kSkip/kQuarantine apply the
  /// good events and report the bad ones in the response.
  BadEventPolicy bad_event_policy = BadEventPolicy::kReject;
  /// Byte budget of the cross-request result cache (server/cache.h).
  /// 0 = caching off: /query and /batch behave exactly as before and no
  /// X-Wfq-Cache header is emitted. wfqd enables it by default
  /// (--cache-mb / --cache-off).
  std::size_t cache_bytes = 0;
  /// Shards of the result cache (contention knob; clamped to >= 1).
  std::size_t cache_shards = 8;

  // ---- standing queries (server/subscribe.h) -----------------------------
  /// Subscription capacity / stream concurrency / retained-backlog caps.
  SubscribeOptions subscribe;
  /// Heartbeat cadence on idle subscribe streams (clamped to >= 100ms).
  std::int64_t subscribe_heartbeat_ms = 5000;
  /// Longest ?wait_ms= a long-poll may request.
  std::int64_t subscribe_wait_cap_ms = 30000;
  /// Bad events retained per ingest request for the response's
  /// "bad_events" array; excess is counted in "bad_events_dropped".
  std::size_t last_bad_cap = 1024;
  /// LogMonitor quarantine ring capacity (kQuarantine policy only).
  std::size_t quarantine_capacity = 1024;

  // ---- store-failure degraded mode (health.h) ----------------------------
  /// First recovery-probe delay after a store write failure degrades the
  /// server; doubles per failed probe up to the cap (wfqd:
  /// --recovery-backoff-ms).
  std::int64_t recovery_backoff_ms = 100;
  std::int64_t recovery_backoff_cap_ms = 5000;
  /// Consecutive failed probes before recovery gives up and the server
  /// stays degraded for an operator; 0 = retry forever (wfqd:
  /// --max-recovery-attempts).
  int max_recovery_attempts = 0;
  /// Observes every health transition (wfqd logs them to the access log);
  /// called off the request path, may be null.
  std::function<void(HealthState from, HealthState to,
                     const std::string& detail)>
      on_health_transition;
};

class QueryService {
 public:
  /// Serves `initial` (replayed into the monitor so ingest continues its
  /// wid sequence). With a store, ingested events are mirrored durably;
  /// the store's log must equal `initial` (wfqd opens the store and loads
  /// it). `drain` comes from the HttpServer so in-flight evaluations stop
  /// when the drain grace period expires.
  QueryService(std::optional<Log> initial, ServiceOptions options,
               CancelToken drain, std::optional<LogStore> store);

  /// Registers every endpoint on the router.
  void bind(Router& router, const HttpServer* server = nullptr);

  /// Late-binds the server for /stats counters. The Router is moved INTO
  /// HttpServer at construction, so bind() necessarily runs first; call
  /// this after the server exists (and before start()).
  void attach_server(const HttpServer* server) { server_ = server; }

  /// Borrowed request observer backing /debug/requests, /debug/slow and
  /// the observability blocks of /metrics and /stats. Null (the default)
  /// turns the debug endpoints into 404s. Usually the same observer given
  /// to ServerOptions::observer; must outlive the service.
  void attach_observer(const RequestObserver* observer) {
    observer_ = observer;
  }

  std::size_t num_records() const;

  /// The degraded-mode state machine; null when the service has no store
  /// (nothing durable can fail structurally). Exposed for tests and for
  /// wfqd's shutdown path (monitor.stop() before the store dies).
  HealthMonitor* health() noexcept { return health_.get(); }
  const HealthMonitor* health() const noexcept { return health_.get(); }

 private:
  /// An immutable snapshot queries run against; replaced wholesale by
  /// ingest. `log` is owned here so `engine` (which borrows it) can never
  /// dangle while a request holds the shared_ptr.
  struct State {
    std::optional<Log> log;               // nullopt = empty log
    std::unique_ptr<QueryEngine> engine;  // null iff log is empty
    /// Monotonic snapshot version; part of every cache key, so an ingest
    /// that publishes a new snapshot implicitly invalidates all cached
    /// results (old-version entries age out of the LRU).
    std::uint64_t version = 1;
  };

  std::shared_ptr<const State> state() const;
  void rebuild_state();
  RunLimits limits_from(const class JsonValue& body) const;
  MonitorOptions monitor_options();
  /// Feeds `log` through the monitor event-by-event, asserting wid
  /// identity (LogMonitor assigns wids sequentially). Throws on mismatch.
  void replay_into_monitor(const Log& log);
  /// HealthMonitor's RecoverFn: under ingest_mu_, reopens the store in
  /// place (quarantine recovery), rebuilds the monitor from the durable
  /// log, and republishes the snapshot. False + *error when the store is
  /// still unreadable.
  bool recover_store(std::string* error);

  HttpResponse handle_query(const HttpRequest& req, RequestContext& ctx);
  HttpResponse handle_batch(const HttpRequest& req, RequestContext& ctx);
  HttpResponse handle_ingest(const HttpRequest& req, RequestContext& ctx);
  HttpResponse handle_subscribe(const HttpRequest& req, RequestContext& ctx);
  /// GET (poll or ?stream=1) and DELETE on /subscribe/{id}.
  HttpResponse handle_subscription(const HttpRequest& req,
                                   RequestContext& ctx);
  HttpResponse handle_metrics(const HttpRequest& req) const;
  HttpResponse handle_stats(const HttpRequest& req) const;
  HttpResponse handle_healthz(const HttpRequest& req) const;
  HttpResponse handle_version(const HttpRequest& req) const;
  HttpResponse handle_debug_requests(const HttpRequest& req) const;
  HttpResponse handle_debug_slow(const HttpRequest& req) const;

  /// Renders a raw monitor match into the subscribe event JSON, or empty
  /// when the subscription's where clause rejects it. `index` must belong
  /// to a snapshot containing the incident's positions.
  static std::string render_sub_event(const Query& parsed,
                                      const Incident& incident,
                                      const LogIndex& index);
  /// Routes freshly drained monitor matches to their subscriptions
  /// (where-filtering against `st`) and repairs cached entries for the
  /// subscribed queries from old_version to st->version. Caller holds
  /// ingest_mu_; `st` is the snapshot just published.
  void route_matches(const std::vector<LogMonitor::Match>& raw,
                     const std::shared_ptr<const State>& st,
                     std::uint64_t old_version);
  /// Re-registers every live subscription on the freshly rebuilt monitor
  /// (recovery path) and reconciles delivery via Subscription::fed_raw.
  /// Caller holds ingest_mu_.
  void reattach_subscriptions();
  /// True while a streaming/long-polling consumer should stop waiting.
  bool delivery_interrupted() const;

  ServiceOptions options_;
  CancelToken drain_;
  const HttpServer* server_ = nullptr;  // for /stats; borrowed
  const RequestObserver* observer_ = nullptr;  // for /debug/*; borrowed
  /// Null when options_.cache_bytes == 0 (cache off).
  std::unique_ptr<ResultCache> cache_;

  mutable std::mutex state_mu_;
  std::shared_ptr<const State> state_;

  /// Mutable: handle_stats (const) must hold it while reading the store's
  /// segment/zone vectors, which ingest grows concurrently.
  mutable std::mutex ingest_mu_;
  /// Next snapshot version (mutated in rebuild_state, which runs from the
  /// constructor and then only under ingest_mu_).
  std::uint64_t version_seq_ = 1;
  LogMonitor monitor_;
  std::optional<LogStore> store_;
  /// Degraded-mode machine (see health.h); created iff store_ is set.
  /// Declared after store_ so its recovery thread is stopped (by the
  /// destructor, reverse member order) before the store goes away.
  std::unique_ptr<HealthMonitor> health_;
  std::vector<BadEvent> last_bad_;  // callback sink, under ingest_mu_
  std::size_t last_bad_dropped_ = 0;  // beyond last_bad_cap, under ingest_mu_
  /// Atomic so /stats can read it without taking ingest_mu_ (which an
  /// ingest holding the store open could pin for a while). Writes stay
  /// under ingest_mu_.
  std::atomic<bool> ingest_enabled_{true};
  /// The human-readable reason behind ingest_enabled_ == false. Guarded by
  /// its own leaf mutex (NOT ingest_mu_) so /stats can snapshot it without
  /// waiting behind a long ingest — writers hold ingest_mu_ AND take this.
  mutable std::mutex ingest_reason_mu_;
  std::string ingest_disabled_reason_;

  /// Standing queries (server/subscribe.h). The registry has its own
  /// mutex; monitor-coupled mutations stay under ingest_mu_.
  SubscriptionRegistry subs_;
  /// Cache entries repaired in place on ingest (subscribed queries only).
  std::atomic<std::uint64_t> cache_repairs_{0};

  void set_ingest_disabled(std::string reason);  // under ingest_mu_
  std::string ingest_disabled_reason() const;
};

}  // namespace wflog::server
