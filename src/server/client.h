#pragma once

// A tiny blocking HTTP/1.1 client — just enough to exercise wfqd from
// tests and bench/bench_server.cpp without pulling in a dependency.
//
// One HttpClient holds one keep-alive connection to one host:port and is
// NOT thread-safe: concurrent load generators use one client per thread.
// If the server closed the idle connection between requests (keep-alive
// races are inherent to HTTP), the client transparently reconnects and
// retries once — but only when that is provably safe: the method is
// idempotent (GET/HEAD), or no byte of the request reached the socket.
// A fully-written POST whose connection then dies is NOT replayed — the
// server may already have applied it (e.g. /ingest), and a silent retry
// would double-submit; the caller gets an IoError and decides.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/http.h"

namespace wflog::server {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased
  std::string body;

  /// First value of `name` (lowercase), or nullptr.
  const std::string* header(std::string_view name) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 10000);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Extra request headers, e.g. {{"cache-control", "no-cache"}}.
  using Headers = std::vector<std::pair<std::string, std::string>>;

  ClientResponse get(const std::string& target, const Headers& extra = {});
  ClientResponse post(const std::string& target, const std::string& body,
                      const std::string& content_type = "application/json",
                      const Headers& extra = {});
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body,
                         const std::string& content_type,
                         const Headers& extra = {});

  /// Sends raw bytes verbatim and reads one response — for feeding the
  /// server deliberately malformed requests in tests. No retry.
  ClientResponse raw(const std::string& bytes);

  /// True while the keep-alive connection is up (observability for tests;
  /// requests reconnect on demand).
  bool connected() const noexcept { return fd_ >= 0; }
  void disconnect() noexcept;

 private:
  void connect_or_throw();
  /// Writes `wire` and parses one response. Returns nullopt when the
  /// connection turned out to be dead AND a retry is provably safe: the
  /// method is idempotent, or zero request bytes reached the socket.
  /// Unsafe-to-retry failures throw instead.
  std::optional<ClientResponse> try_once(const std::string& wire,
                                         bool fresh_connection,
                                         bool idempotent);
  ClientResponse read_response();

  std::string host_;
  std::uint16_t port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string buf_;  // bytes past the previous response (pipelining slack)
};

}  // namespace wflog::server
