#pragma once

// A tiny blocking HTTP/1.1 client — just enough to exercise wfqd from
// tests and bench/bench_server.cpp without pulling in a dependency.
//
// One HttpClient holds one keep-alive connection to one host:port and is
// NOT thread-safe: concurrent load generators use one client per thread.
// If the server closed the idle connection between requests (keep-alive
// races are inherent to HTTP), the client transparently reconnects and
// retries — but only when that is provably safe: the method is
// idempotent (GET/HEAD), or no byte of the request reached the socket.
// A fully-written POST whose connection then dies is NOT replayed — the
// server may already have applied it (e.g. /ingest), and a silent retry
// would double-submit; the caller gets an IoError and decides.
//
// Connect failures and safe retries follow a bounded exponential-backoff
// schedule with deterministic jitter (ClientBackoff): attempts are capped,
// total sleep is capped by a wall-time budget, and the sleep itself is
// injectable so tests verify the schedule with a fake clock.

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/http.h"
#include "server/sockio.h"

namespace wflog::server {

/// Retry pacing for connect failures and provably-safe request retries.
struct ClientBackoff {
  /// Retries after the first attempt; 0 restores fail-fast.
  int max_retries = 3;
  /// First delay; doubles per retry up to `cap`.
  std::chrono::milliseconds initial{50};
  std::chrono::milliseconds cap{2000};
  /// Ceiling on the SUM of all delays one request may sleep — the
  /// "total wall time" bound (the last delay is clamped to what is
  /// left; a spent budget ends the schedule).
  std::chrono::milliseconds budget{5000};
  /// Seed of the deterministic jitter stream (splitmix64); same seed,
  /// same schedule.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// The delay sequence one retried operation walks: attempt k sleeps a
/// jittered value in [base/2, base] where base = min(cap, initial·2^(k-1)).
/// Pure and deterministic given the options — unit-testable without
/// sleeping (tests drive next() and inspect the values).
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const ClientBackoff& options);

  /// Delay to sleep before the next retry, or nullopt when attempts or
  /// budget are exhausted (caller gives up and surfaces the error).
  std::optional<std::chrono::milliseconds> next();

  int attempts_made() const noexcept { return attempt_; }
  std::chrono::milliseconds total_slept() const noexcept { return slept_; }

 private:
  ClientBackoff options_;
  int attempt_ = 0;
  std::chrono::milliseconds slept_{0};
  std::uint64_t rng_;
};

struct ClientOptions {
  int timeout_ms = 10000;
  ClientBackoff backoff;
  /// Injected sleep (tests pass a recorder; null = real sleep_for).
  std::function<void(std::chrono::milliseconds)> sleep_fn;
  /// Borrowed socket seam; null = real syscalls. Must outlive the client.
  SocketIo* io = nullptr;
};

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased
  std::string body;

  /// First value of `name` (lowercase), or nullptr.
  const std::string* header(std::string_view name) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 10000);
  HttpClient(std::string host, std::uint16_t port, ClientOptions options);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Extra request headers, e.g. {{"cache-control", "no-cache"}}.
  using Headers = std::vector<std::pair<std::string, std::string>>;

  ClientResponse get(const std::string& target, const Headers& extra = {});
  ClientResponse post(const std::string& target, const std::string& body,
                      const std::string& content_type = "application/json",
                      const Headers& extra = {});
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body,
                         const std::string& content_type,
                         const Headers& extra = {});

  /// Sends raw bytes verbatim and reads one response — for feeding the
  /// server deliberately malformed requests in tests. No retry.
  ClientResponse raw(const std::string& bytes);

  /// Sends one request over a FRESH connection and consumes a chunked
  /// (streamed) response incrementally: `on_chunk` receives each chunk's
  /// payload as it arrives and may return false to stop (the connection is
  /// dropped — the server sees the client go away). Returns status +
  /// headers with an empty body for chunked responses; a non-chunked
  /// response (e.g. a 4xx error) is read whole into `body` without calling
  /// `on_chunk`. Never retried: a partially consumed stream must not be
  /// replayed. EOF before the terminal 0-chunk throws IoError — that is
  /// the truncation signal for a stream the server aborted mid-produce.
  /// The timeout applies per read, not to the whole stream (heartbeats
  /// keep an idle stream alive).
  ClientResponse stream(const std::string& method, const std::string& target,
                        const std::string& body,
                        const std::function<bool(std::string_view)>& on_chunk,
                        const Headers& extra = {});

  /// True while the keep-alive connection is up (observability for tests;
  /// requests reconnect on demand).
  bool connected() const noexcept { return fd_ >= 0; }
  void disconnect() noexcept;

 private:
  SocketIo& io() const noexcept {
    return options_.io != nullptr ? *options_.io : real_socket_io();
  }
  void sleep_for(std::chrono::milliseconds delay);
  /// One raw socket+connect; throws IoError on failure.
  void connect_once();
  /// connect_once under the backoff schedule; throws the final error once
  /// attempts/budget run out.
  void connect_or_throw();
  /// Writes `wire` and parses one response. Returns nullopt when the
  /// connection turned out to be dead AND a retry is provably safe: the
  /// method is idempotent, or zero request bytes reached the socket.
  /// Unsafe-to-retry failures throw instead.
  std::optional<ClientResponse> try_once(const std::string& wire,
                                         bool fresh_connection,
                                         bool idempotent);
  ClientResponse read_response();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  int timeout_ms_;  // == options_.timeout_ms (kept for brevity)
  int fd_ = -1;
  std::string buf_;  // bytes past the previous response (pipelining slack)
};

}  // namespace wflog::server
