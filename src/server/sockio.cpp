#include "server/sockio.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

namespace wflog::server {

SocketIo& real_socket_io() {
  static RealSocketIo io;
  return io;
}

int RealSocketIo::accept(int listen_fd) {
  return ::accept(listen_fd, nullptr, nullptr);
}

long RealSocketIo::recv(int fd, char* buf, std::size_t len) {
  return static_cast<long>(::recv(fd, buf, len, 0));
}

long RealSocketIo::send(int fd, const char* data, std::size_t len) {
  return static_cast<long>(::send(fd, data, len, MSG_NOSIGNAL));
}

int RealSocketIo::connect(int fd, const sockaddr* addr, socklen_t len) {
  return ::connect(fd, addr, len);
}

int RealSocketIo::poll_in(int fd, int timeout_ms) {
  ::pollfd pfd{fd, POLLIN, 0};
  while (true) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) return -1;
    return r == 0 ? 0 : 1;
  }
}

int RealSocketIo::close(int fd) { return ::close(fd); }

int RealSocketIo::shutdown(int fd, int how) { return ::shutdown(fd, how); }

// ---- FaultSocketIo -------------------------------------------------------

FaultSocketIo::FaultSocketIo(SocketIo* base)
    : base_(base != nullptr ? base : &real_socket_io()) {}

void FaultSocketIo::add_fault(SocketFault fault) {
  const std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(Armed{fault, 0});
}

void FaultSocketIo::clear_faults() {
  const std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

FaultSocketIo::Stats FaultSocketIo::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultSocketIo::Decision FaultSocketIo::decide(SocketFault::Op op) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.ops;
  for (Armed& armed : faults_) {
    const SocketFault& f = armed.fault;
    if (f.op != SocketFault::Op::kAny && f.op != op) continue;
    const std::size_t index = ++armed.seen;  // 1-based among matching ops
    if (index < f.at_op) continue;
    if (f.count != kStickySocket && index >= f.at_op + f.count) continue;
    ++stats_.injected;
    return Decision{true, f.kind, f.max_bytes, f.delay_ms};
  }
  return Decision{};
}

namespace {

/// Applies an error-kind fault by setting errno; true when it consumed the
/// op (i.e. the caller should return failure without touching the socket).
bool fail_with(SocketFault::Kind kind, SocketFault::Op op) {
  switch (kind) {
    case SocketFault::Kind::kEintr:
      errno = EINTR;
      return true;
    case SocketFault::Kind::kEagain:
      errno = EAGAIN;
      return true;
    case SocketFault::Kind::kConnReset:
      errno = ECONNRESET;
      return true;
    case SocketFault::Kind::kAcceptFail:
      // EMFILE on a non-accept op still reads as a transient local failure.
      errno = op == SocketFault::Op::kAccept ? EMFILE : EIO;
      return true;
    case SocketFault::Kind::kConnectFail:
      errno = ECONNREFUSED;
      return true;
    case SocketFault::Kind::kShortRead:
    case SocketFault::Kind::kShortWrite:
    case SocketFault::Kind::kDelay:
      return false;  // not an error fault; handled by the caller
  }
  return false;
}

void nap(int delay_ms) {
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

}  // namespace

int FaultSocketIo::accept(int listen_fd) {
  const Decision d = decide(SocketFault::Op::kAccept);
  if (d.inject) {
    if (d.kind == SocketFault::Kind::kDelay) {
      nap(d.delay_ms);
    } else if (fail_with(d.kind, SocketFault::Op::kAccept)) {
      return -1;
    }
  }
  return base_->accept(listen_fd);
}

long FaultSocketIo::recv(int fd, char* buf, std::size_t len) {
  const Decision d = decide(SocketFault::Op::kRecv);
  if (d.inject) {
    if (d.kind == SocketFault::Kind::kDelay) {
      nap(d.delay_ms);
    } else if (d.kind == SocketFault::Kind::kShortRead) {
      len = std::max<std::size_t>(1, std::min(len, d.max_bytes));
    } else if (fail_with(d.kind, SocketFault::Op::kRecv)) {
      return -1;
    }
  }
  return base_->recv(fd, buf, len);
}

long FaultSocketIo::send(int fd, const char* data, std::size_t len) {
  const Decision d = decide(SocketFault::Op::kSend);
  if (d.inject) {
    if (d.kind == SocketFault::Kind::kDelay) {
      nap(d.delay_ms);
    } else if (d.kind == SocketFault::Kind::kShortWrite) {
      len = std::max<std::size_t>(1, std::min(len, d.max_bytes));
    } else if (fail_with(d.kind, SocketFault::Op::kSend)) {
      return -1;
    }
  }
  return base_->send(fd, data, len);
}

int FaultSocketIo::connect(int fd, const sockaddr* addr, socklen_t len) {
  const Decision d = decide(SocketFault::Op::kConnect);
  if (d.inject) {
    if (d.kind == SocketFault::Kind::kDelay) {
      nap(d.delay_ms);
    } else if (fail_with(d.kind, SocketFault::Op::kConnect)) {
      return -1;
    }
  }
  return base_->connect(fd, addr, len);
}

int FaultSocketIo::poll_in(int fd, int timeout_ms) {
  // Readiness polling is not a faultable op: every interesting failure
  // shows up on the recv/send that follows, and faulting poll would only
  // skew the op indices tests script against.
  return base_->poll_in(fd, timeout_ms);
}

int FaultSocketIo::close(int fd) { return base_->close(fd); }

int FaultSocketIo::shutdown(int fd, int how) { return base_->shutdown(fd, how); }

}  // namespace wflog::server
