#pragma once

// SubscriptionRegistry — wfqd's standing-query state (the server half of
// "incremental == batch", ROADMAP item 3).
//
// A subscription pairs one registered LogMonitor query with a durable
// per-client event queue:
//
//   POST /subscribe          register pattern [+ where]; history is
//                            replayed (LogMonitor backfill) so the event
//                            stream is identical to having subscribed
//                            before the first record
//   GET  /subscribe/{id}     long-poll (?wait_ms=) or chunked stream
//                            (?stream=1); ?after=N acknowledges events
//                            with seq <= N (they are then released)
//   DELETE /subscribe/{id}   unsubscribe, releasing all monitor state
//
// Delivery contract (exactly-once): every event carries a per-subscription
// monotonically increasing `seq`. Events are RETAINED until acknowledged
// by `?after=` on a later attach, so a consumer that reconnects with the
// last seq it processed sees each incident exactly once, across client
// disconnects and server degrade/recover cycles. The retained backlog is
// capped (Options::pending_cap); a consumer that never acknowledges —
// the slow-consumer case — has its subscription dropped at the cap with a
// terminal "overflow" event rather than growing without bound.
//
// Threading: one registry mutex guards all subscription state (low
// contention — events are enqueued once per applied ingest event). The
// LogMonitor itself is NOT touched here: registration, feeding, and
// removal of monitor queries stay in QueryService under ingest_mu_, which
// also serializes create()/route()/close(). Lock order is always
// ingest_mu_ -> registry mutex, never the reverse: poll()/stream() take
// only the registry mutex, so delivery never blocks ingest.
//
// Degraded mode: set_paused(true) (store failure) stops event delivery —
// streams emit only heartbeats, polls return empty with "paused": true —
// while every queued event is retained; recovery re-registers the monitor
// queries, reconciles via Subscription::fed_raw, and resumes delivery.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"

namespace wflog::server {

struct SubscribeOptions {
  /// Concurrent subscriptions; registration beyond this answers 503.
  std::size_t max_subscriptions = 64;
  /// Concurrent chunked streams. Each stream occupies one worker thread
  /// for its lifetime, so this must stay well below ServerOptions::threads
  /// (long-poll is the scalable consumption path).
  std::size_t max_streams = 2;
  /// Unacknowledged events retained per subscription before the
  /// slow-consumer policy drops it.
  std::size_t pending_cap = 4096;
};

/// One delivered (or deliverable) event. `json` is the rendered incident
/// BODY ("wid":W,"positions":[..]) — delivery paths wrap it with the
/// envelope and the seq, which only the registry assigns.
struct SubEvent {
  std::uint64_t seq = 0;
  std::string json;
};

struct Subscription {
  std::string id;          // "sub-<n>", stable for the subscription's life
  std::string query_text;  // as registered
  Query parsed;            // pattern [+ where]; where is filtered on feed
  std::string cache_key_base;  // canonical cache identity (version-free)
  /// LogMonitor::QueryId currently backing this subscription; REASSIGNED
  /// after store recovery (the monitor is rebuilt wholesale).
  std::size_t monitor_id = 0;
  /// Raw monitor matches routed to this subscription so far, counted
  /// BEFORE where-filtering. Recovery replays the durable log through a
  /// fresh monitor and skips exactly this many backfill matches — the
  /// replay is deterministic, so the skip re-aligns the streams without
  /// re-delivering (or losing) anything.
  std::uint64_t fed_raw = 0;
  std::uint64_t next_seq = 1;  // seq the next event will get
  std::deque<SubEvent> pending;  // retained until acked via ?after=
  bool closed = false;
  std::string close_reason;  // "unsubscribed" | "overflow" | ...
  std::uint64_t delivered = 0;  // events handed to any consumer
};

/// Outcome of one poll (?wait_ms=) attach.
struct SubPollResult {
  bool found = false;   // false -> 404
  bool closed = false;  // subscription ended (reason below)
  std::string close_reason;
  bool paused = false;  // degraded mode: delivery suspended
  std::vector<SubEvent> events;
  std::uint64_t next_after = 0;  // cursor to ack these events
  std::size_t pending_left = 0;  // events still queued after this batch
};

/// Point-in-time counters for /stats and /metrics.
struct SubscribeStats {
  std::size_t active = 0;
  std::size_t streams = 0;
  std::size_t pending = 0;  // retained events across subscriptions
  bool paused = false;
  std::uint64_t created_total = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t acked_total = 0;
  std::uint64_t heartbeats_total = 0;
  std::uint64_t overflow_dropped = 0;  // subscriptions killed at the cap
};

class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(SubscribeOptions options);

  SubscriptionRegistry(const SubscriptionRegistry&) = delete;
  SubscriptionRegistry& operator=(const SubscriptionRegistry&) = delete;

  /// Registers a subscription whose monitor query is already backfilled;
  /// `initial_events` are the where-filtered historical matches (they get
  /// seqs 1..N). `fed_raw` counts the PRE-filter backfill matches.
  /// Returns nullptr at max_subscriptions. Caller holds ingest_mu_.
  std::shared_ptr<Subscription> create(std::string query_text, Query parsed,
                                       std::string cache_key_base,
                                       std::size_t monitor_id,
                                       std::uint64_t fed_raw,
                                       std::vector<std::string> initial_events);

  /// The subscription with `id`, or nullptr. (The returned pointer is
  /// shared state — mutate it only through registry methods.)
  std::shared_ptr<Subscription> find(const std::string& id) const;

  /// Live subscriptions, for ingest routing and recovery re-registration.
  /// Caller holds ingest_mu_ (the set is stable only under it).
  std::vector<std::shared_ptr<Subscription>> live() const;

  /// Appends where-filtered events to `sub` (assigning seqs) and counts
  /// `raw` pre-filter matches against fed_raw. Returns false when the
  /// pending cap was hit: the subscription is closed ("overflow") and the
  /// caller must release its monitor query. Caller holds ingest_mu_.
  bool enqueue(Subscription& sub, std::vector<std::string> events,
               std::uint64_t raw);

  /// Marks closed (waking consumers with the terminal reason) and removes
  /// it from the registry. False if unknown. Caller holds ingest_mu_.
  bool close(const std::string& id, std::string reason);

  /// Degraded-mode delivery gate.
  void set_paused(bool paused);
  bool paused() const;

  /// Acks events with seq <= `after`, then waits up to `wait_ms` for an
  /// event (0 = return immediately) and collects up to `max_events`.
  /// `interrupted` is polled about every 250ms — server drain ends the
  /// wait early. Never blocks while paused (returns empty, paused=true).
  SubPollResult poll(const std::string& id, std::uint64_t after,
                     std::int64_t wait_ms, std::size_t max_events,
                     const std::function<bool()>& interrupted);

  /// Streaming consumption: acks <= `after`, then delivers every retained
  /// and future event through `on_event` (false = client gone / stop) and
  /// `on_heartbeat` about every `heartbeat_ms` of idleness. Runs until the
  /// subscription closes, `interrupted` fires, or a callback declines.
  /// Returns the end reason ("unsubscribed", "overflow", "draining",
  /// "client", "not-found", "busy" when max_streams was hit).
  std::string stream(const std::string& id, std::uint64_t after,
                     std::int64_t heartbeat_ms,
                     const std::function<bool(const SubEvent&)>& on_event,
                     const std::function<bool()>& on_heartbeat,
                     const std::function<bool()>& interrupted);

  SubscribeStats stats() const;
  std::size_t size() const;
  const SubscribeOptions& options() const noexcept { return options_; }

 private:
  void ack_locked(Subscription& sub, std::uint64_t after);

  SubscribeOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Subscription>> subs_;
  bool paused_ = false;
  std::size_t streams_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t created_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t acked_total_ = 0;
  std::uint64_t heartbeats_total_ = 0;
  std::uint64_t overflow_dropped_ = 0;
};

}  // namespace wflog::server
