#pragma once

// A small generic JSON layer for the query server (src/server/). The log
// codecs (log/io_jsonl.cpp) carry their own record-shaped parser tuned for
// the one line format they read; the server instead needs arbitrary
// client-supplied documents — nested options objects, query arrays — so
// this is a general recursive-descent parser over a tagged value tree.
//
// Design points:
//   * JsonObject preserves insertion order (vector of pairs, not a map):
//     responses render deterministically and small objects beat a map.
//   * parse_json throws Error with a byte offset on malformed input; the
//     HTTP layer maps that to a 400 with the message in the body.
//   * dump() escapes per RFC 8259; non-finite doubles render as null
//     (JSON has no NaN/Inf).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wflog::server {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered key/value object.
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;
  JsonValue(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}  // NOLINT
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}  // NOLINT
  JsonValue(std::size_t u)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(s) {}
  JsonValue(const char* s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(s) {}
  JsonValue(JsonArray a)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonMembers m)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kObject), members_(std::move(m)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  JsonArray& as_array() { return array_; }
  const JsonMembers& members() const { return members_; }
  JsonMembers& members() { return members_; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Appends a member (objects) — builder-style convenience.
  void set(std::string key, JsonValue v);

  /// Serializes compactly (no whitespace).
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  JsonArray array_;
  JsonMembers members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Throws wflog::Error with a byte offset.
JsonValue parse_json(std::string_view text);

/// Appends `s` JSON-escaped, with surrounding quotes, to `out`.
void json_append_quoted(std::string& out, std::string_view s);

}  // namespace wflog::server
