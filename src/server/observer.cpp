#include "server/observer.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace wflog::server {
namespace {

const char* cache_name(int cache) {
  return cache == 1 ? "hit" : "miss";  // only called when cache >= 0
}

/// Shared breakdown object for ring entries and access-log lines.
JsonValue breakdown_json(const RequestRecord& rec) {
  JsonValue b{JsonMembers{}};
  b.set("queue_us", rec.queue_us);
  b.set("parse_us", rec.parse_us);
  b.set("cache_us", rec.cache_us);
  b.set("eval_us", rec.eval_us);
  b.set("serialize_us", rec.serialize_us);
  b.set("wall_us", rec.wall_us);
  return b;
}

JsonValue record_json(const RequestRecord& rec) {
  JsonValue v{JsonMembers{}};
  v.set("seq", rec.seq);
  v.set("id", rec.id);
  v.set("ts_ms", static_cast<std::int64_t>(rec.ts_ms));
  v.set("method", rec.method);
  v.set("path", rec.target);
  v.set("key", rec.canonical_key);
  v.set("status", rec.status);
  v.set("bytes", rec.bytes);
  v.set("dropped", rec.dropped);
  v.set("cache", rec.cache < 0 ? JsonValue(nullptr)
                               : JsonValue(cache_name(rec.cache)));
  v.set("shards", rec.shards);
  v.set("stop_reason", rec.stop_reason);
  v.set("breakdown", breakdown_json(rec));
  return v;
}

std::uint64_t unix_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RequestObserver::RequestObserver(ObserverOptions options)
    : options_(std::move(options)),
      bounds_(obs::default_latency_bounds()),
      requests_(options_.requests_capacity),
      slow_(options_.slow_capacity) {
  if (options_.access_log_path.empty()) return;
  if (options_.access_log_path == "-") {
    log_ = &std::cout;
    return;
  }
  log_file_ = std::make_unique<std::ofstream>(options_.access_log_path,
                                              std::ios::app);
  if (!log_file_->is_open()) {
    throw Error("cannot open access log: " + options_.access_log_path);
  }
  log_ = log_file_.get();
}

RequestObserver::~RequestObserver() = default;

void RequestObserver::observe_labeled(std::map<std::string, Hist>& family,
                                      const std::string& key,
                                      std::size_t max_keys, double seconds) {
  // Bounded label cardinality: past max_keys distinct labels, everything
  // folds into "_other" — a scrape must not grow with the query stream.
  auto it = family.find(key);
  if (it == family.end()) {
    if (family.size() >= max_keys) {
      it = family.try_emplace("_other").first;
    } else {
      it = family.try_emplace(key).first;
    }
  }
  Hist& h = it->second;
  if (h.buckets.empty()) h.buckets.assign(bounds_.size() + 1, 0);
  std::size_t b = 0;
  while (b < bounds_.size() && seconds > bounds_[b]) ++b;
  ++h.buckets[b];
  h.sum += seconds;
  ++h.count;
}

void RequestObserver::maybe_reopen_locked() {
  if (!reopen_requested_.exchange(false, std::memory_order_relaxed)) return;
  if (log_file_ == nullptr) return;  // stdout needs no rotation
  // Reuse the same ofstream object so log_ keeps pointing at it; append
  // mode recreates the path logrotate moved away.
  log_file_->close();
  log_file_->clear();
  log_file_->open(options_.access_log_path, std::ios::app);
}

void RequestObserver::write_line(const std::string& text) {
  std::lock_guard<std::mutex> lock(log_mu_);
  maybe_reopen_locked();
  (*log_) << text << '\n';
  log_->flush();  // one request = one durable line; tailing must see it
  access_lines_.fetch_add(1, std::memory_order_relaxed);
}

void RequestObserver::write_access_line(const RequestRecord& rec, bool slow) {
  JsonValue line = record_json(rec);
  line.set("slow", slow);
  write_line(line.dump());
}

void RequestObserver::log_event(const std::string& kind, JsonValue fields) {
  if (log_ == nullptr) return;
  fields.set("event", kind);
  fields.set("ts_ms", static_cast<std::int64_t>(unix_ms_now()));
  write_line(fields.dump());
}

void RequestObserver::record(RequestRecord rec, const RequestContext& ctx) {
  if (rec.ts_ms == 0) rec.ts_ms = unix_ms_now();
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  if (rec.dropped) dropped_seen_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    observe_labeled(by_endpoint_, rec.target, /*max_keys=*/32,
                    rec.wall_us * 1e-6);
    if (!rec.canonical_key.empty()) {
      observe_labeled(by_key_, rec.canonical_key, /*max_keys=*/64,
                      rec.wall_us * 1e-6);
    }
  }

  const bool slow = options_.slow_us >= 0 &&
                    rec.wall_us >= static_cast<double>(options_.slow_us);
  if (slow) {
    SlowCapture cap;
    cap.query = ctx.query;
    cap.plan = ctx.plan;
    JsonArray spans;
    if (ctx.has_span_mark) {
      // Same worker thread that ran the handler: the thread buffer delta
      // since the handler's mark is exactly this request's span stream.
      WFLOG_TELEMETRY(t) {
        for (const obs::SpanSummary& s :
             t->tracer.summarize_thread_since(ctx.span_mark)) {
          JsonValue span{JsonMembers{}};
          span.set("span", s.name);
          span.set("count", s.count);
          span.set("total_us", static_cast<double>(s.total_ns) / 1000.0);
          span.set("max_us", static_cast<double>(s.max_ns) / 1000.0);
          spans.push_back(std::move(span));
        }
      }
    }
    cap.spans = JsonValue(std::move(spans));
    cap.rec = rec;
    slow_.push(std::move(cap));
    slow_captured_.fetch_add(1, std::memory_order_relaxed);
  }

  if (log_ != nullptr) write_access_line(rec, slow);
  requests_.push(std::move(rec));
}

JsonValue RequestObserver::requests_json() const {
  JsonArray items;
  for (const RequestRecord& rec : requests_.snapshot()) {
    items.push_back(record_json(rec));
  }
  JsonValue out{JsonMembers{}};
  out.set("requests", JsonValue(std::move(items)));
  out.set("capacity", requests_.capacity());
  out.set("evicted", static_cast<std::int64_t>(requests_.evicted()));
  return out;
}

JsonValue RequestObserver::slow_json() const {
  JsonArray items;
  for (const SlowCapture& cap : slow_.snapshot()) {
    JsonValue v = record_json(cap.rec);
    v.set("query", cap.query);
    v.set("plan", cap.plan);
    v.set("spans", cap.spans);
    items.push_back(std::move(v));
  }
  JsonValue out{JsonMembers{}};
  out.set("slow", JsonValue(std::move(items)));
  out.set("threshold_ms",
          options_.slow_us < 0
              ? JsonValue(nullptr)
              : JsonValue(static_cast<double>(options_.slow_us) / 1000.0));
  out.set("capacity", slow_.capacity());
  out.set("evicted", static_cast<std::int64_t>(slow_.evicted()));
  return out;
}

JsonValue RequestObserver::stats_json() const {
  JsonValue out{JsonMembers{}};
  out.set("requests",
          static_cast<std::int64_t>(
              requests_seen_.load(std::memory_order_relaxed)));
  out.set("dropped_responses",
          static_cast<std::int64_t>(
              dropped_seen_.load(std::memory_order_relaxed)));
  out.set("slow_captured",
          static_cast<std::int64_t>(
              slow_captured_.load(std::memory_order_relaxed)));
  out.set("slow_threshold_ms",
          options_.slow_us < 0
              ? JsonValue(nullptr)
              : JsonValue(static_cast<double>(options_.slow_us) / 1000.0));
  out.set("access_log", log_ != nullptr);
  out.set("access_log_lines",
          static_cast<std::int64_t>(
              access_lines_.load(std::memory_order_relaxed)));
  JsonValue endpoints{JsonMembers{}};
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    for (const auto& [endpoint, h] : by_endpoint_) {
      JsonValue e{JsonMembers{}};
      e.set("count", static_cast<std::int64_t>(h.count));
      e.set("total_seconds", h.sum);
      endpoints.set(endpoint, std::move(e));
    }
  }
  out.set("endpoints", std::move(endpoints));
  return out;
}

std::string RequestObserver::prometheus_text() const {
  std::ostringstream os;
  const auto emit_family = [&](const char* name, const char* label,
                               const char* help,
                               const std::map<std::string, Hist>& family) {
    if (family.empty()) return;
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " histogram\n";
    for (const auto& [key, h] : family) {
      const std::string esc = obs::escape_label_value(key);
      std::uint64_t cumulative = 0;
      char buf[64];
      for (std::size_t b = 0; b < bounds_.size(); ++b) {
        cumulative += h.buckets[b];
        std::snprintf(buf, sizeof buf, "%g", bounds_[b]);
        os << name << "_bucket{" << label << "=\"" << esc << "\",le=\"" << buf
           << "\"} " << cumulative << '\n';
      }
      cumulative += h.buckets.back();
      os << name << "_bucket{" << label << "=\"" << esc << "\",le=\"+Inf\"} "
         << cumulative << '\n';
      std::snprintf(buf, sizeof buf, "%.9g", h.sum);
      os << name << "_sum{" << label << "=\"" << esc << "\"} " << buf << '\n';
      os << name << "_count{" << label << "=\"" << esc << "\"} " << h.count
         << '\n';
    }
  };
  std::lock_guard<std::mutex> lock(hist_mu_);
  emit_family("wflog_server_endpoint_seconds", "endpoint",
              "Request wall time by endpoint.", by_endpoint_);
  emit_family("wflog_server_pattern_seconds", "pattern_key",
              "Request wall time by canonical pattern key.", by_key_);
  return os.str();
}

}  // namespace wflog::server
