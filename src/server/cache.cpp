#include "server/cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/printer.h"
#include "obs/telemetry.h"

namespace wflog::server {
namespace {

/// True when `request` is strictly tighter than `stored` on one budget
/// dimension (0 = unlimited on either side).
bool tighter(std::int64_t request, std::int64_t stored) {
  return request != 0 && (stored == 0 || request < stored);
}

bool tighter(std::size_t request, std::size_t stored) {
  return request != 0 && (stored == 0 || request < stored);
}

}  // namespace

ResultCache::ResultCache(CacheOptions options) : options_(options) {
  options_.shards = std::max<std::size_t>(1, options_.shards);
  // A budget smaller than the shard count still gets one working shard's
  // worth of bytes per shard (integer division would zero them out).
  shard_budget_ =
      options_.max_bytes == 0
          ? 0
          : std::max<std::size_t>(1, options_.max_bytes / options_.shards);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::key(const Query& q, std::uint64_t version) {
  // canonical_key is injective on pattern shape classes (free text inside
  // is length-prefixed, see core/pattern.h), so a single unit separator
  // between the sections keeps the whole key injective: canonical keys
  // never contain 0x1F.
  std::string out = canonical_key(*q.pattern);
  out += '\x1f';
  if (q.where != nullptr) {
    // Binding names matter to the where clause but not to canonical_key;
    // fold in the binding-carrying pattern text plus the expression.
    out += to_text(*q.pattern);
    out += '\x1f';
    out += q.where->to_string();
  }
  out += '\x1f';
  out += std::to_string(version);
  return out;
}

std::size_t ResultCache::result_bytes(const QueryResult& r) {
  std::size_t n = sizeof(QueryResult) + 512;  // node + bookkeeping slack
  for (const IncidentSet::Group& g : r.incidents.groups()) {
    n += sizeof(IncidentSet::Group);
    for (const Incident& o : g.incidents) {
      n += sizeof(Incident) + o.positions().size() * sizeof(IsLsn);
    }
  }
  // Pattern trees are retained via parsed/executed; count atoms + interior
  // nodes at a flat estimate.
  if (r.parsed != nullptr) {
    n += (r.parsed->num_atoms() + r.parsed->num_operators()) * 96;
  }
  if (r.executed != nullptr && r.executed != r.parsed) {
    n += (r.executed->num_atoms() + r.executed->num_operators()) * 96;
  }
  return n;
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void ResultCache::publish_bytes_metric() const {
  WFLOG_TELEMETRY(t) {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      total += s->bytes;
    }
    t->metrics
        .gauge("wflog_server_cache_bytes",
               "Bytes retained by the wfqd result cache")
        ->set(static_cast<double>(total));
  }
}

std::shared_ptr<const QueryResult> ResultCache::lookup(
    const std::string& key, const RunLimits& limits) {
  if (!enabled()) return nullptr;
  Shard& s = shard_for(key);
  std::shared_ptr<const QueryResult> hit;
  bool limit_reject = false;
  {
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(std::string_view(key));
    if (it == s.map.end()) {
      ++s.misses;
    } else {
      const Entry& e = *it->second;
      // Serve only when the request could not have been truncated earlier
      // than the stored run: a tighter deadline or incident budget owes
      // the caller its own stop_reason, not a cached complete answer.
      if (tighter(limits.deadline.count(), e.deadline_ms) ||
          tighter(limits.max_incidents, e.max_incidents)) {
        ++s.misses;
        ++s.limit_rejects;
        limit_reject = true;
      } else {
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        hit = it->second->result;
        ++s.hits;
      }
    }
  }
  WFLOG_TELEMETRY(t) {
    if (hit != nullptr) {
      t->metrics
          .counter("wflog_server_cache_hits_total",
                   "wfqd result cache hits")
          ->inc();
    } else {
      t->metrics
          .counter("wflog_server_cache_misses_total",
                   "wfqd result cache misses")
          ->inc();
      if (limit_reject) {
        t->metrics
            .counter("wflog_server_cache_limit_rejects_total",
                     "wfqd result cache entries refused because the "
                     "request's limits were tighter than the stored run's")
            ->inc();
      }
    }
  }
  return hit;
}

std::shared_ptr<const QueryResult> ResultCache::peek(
    const std::string& key, RunLimits* producing_limits) {
  if (!enabled()) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard lock(s.mu);
  const auto it = s.map.find(std::string_view(key));
  if (it == s.map.end()) return nullptr;
  if (producing_limits != nullptr) {
    producing_limits->deadline =
        std::chrono::milliseconds(it->second->deadline_ms);
    producing_limits->max_incidents = it->second->max_incidents;
  }
  return it->second->result;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const QueryResult> result,
                         const RunLimits& limits) {
  if (!enabled() || result == nullptr) return;
  // Soundness: never cache a partial or failed answer. Callers already
  // filter, but the cache is the last line of defense.
  if (!result->complete()) return;

  Entry entry;
  entry.key = key;
  entry.bytes = key.size() + result_bytes(*result);
  entry.deadline_ms = limits.deadline.count();
  entry.max_incidents = limits.max_incidents;
  entry.result = std::move(result);
  if (entry.bytes > shard_budget_) return;  // would evict the whole shard

  Shard& s = shard_for(key);
  std::uint64_t evicted = 0;
  {
    std::lock_guard lock(s.mu);
    if (const auto it = s.map.find(std::string_view(key));
        it != s.map.end()) {
      // Refresh: a concurrent miss recomputed the same answer. Keep the
      // newer entry (its limits may be looser, widening future hits).
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.map.erase(it);
    }
    while (!s.lru.empty() && s.bytes + entry.bytes > shard_budget_) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.map.erase(std::string_view(victim.key));
      s.lru.pop_back();
      ++evicted;
    }
    s.bytes += entry.bytes;
    s.lru.push_front(std::move(entry));
    s.map.emplace(std::string_view(s.lru.front().key), s.lru.begin());
    ++s.insertions;
    s.evictions += evicted;
  }
  WFLOG_TELEMETRY(t) {
    t->metrics
        .counter("wflog_server_cache_insertions_total",
                 "wfqd result cache insertions")
        ->inc();
    if (evicted > 0) {
      t->metrics
          .counter("wflog_server_cache_evictions_total",
                   "wfqd result cache LRU evictions")
          ->add(evicted);
    }
  }
  publish_bytes_metric();
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.max_bytes = options_.max_bytes;
  for (const auto& s : shards_) {
    std::lock_guard lock(s->mu);
    out.hits += s->hits;
    out.misses += s->misses;
    out.insertions += s->insertions;
    out.evictions += s->evictions;
    out.limit_rejects += s->limit_rejects;
    out.entries += s->lru.size();
    out.bytes += s->bytes;
  }
  return out;
}

}  // namespace wflog::server
