#pragma once

// A bounded MPMC queue — the admission-control heart of wfqd. The accept
// loop try_push()es connections; when the queue is full the server answers
// 503 + Retry-After instead of queuing unboundedly (load shedding at the
// door, before any parsing or evaluation spends cycles on a request the
// box cannot serve in time).
//
// close() wakes every blocked pop(); workers drain what was already queued
// (those clients were admitted) and then see std::nullopt and exit.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace wflog::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when full or closed — the caller sheds the load.
  bool try_push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Drains everything queued right now (used at shutdown to close
  /// never-started connections). Does not block.
  std::deque<T> drain() {
    std::lock_guard lock(mu_);
    return std::exchange(items_, {});
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wflog::server
