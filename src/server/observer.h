#pragma once

// Request-scoped observability for wfqd (ISSUE 7).
//
// A RequestContext rides along with one HTTP request from the accept
// loop through the worker pool, cache, engine, and shard pool. The
// server fills in transport-level facts (request id, queue wait, wall
// time, bytes, status); the handlers fill in pipeline facts (parse /
// cache / eval / serialize split, cache hit or miss, shard count,
// canonical pattern key, stop reason). When the request finishes — or
// is dropped because the client was too slow — the worker thread hands
// the completed record to the RequestObserver, which:
//
//   * keeps the last N summaries in a BoundedRing  -> GET /debug/requests
//   * captures requests slower than `slow_us` with their optimized plan
//     and a per-operator span summary (the PR 2 span stream that powers
//     explain())                                   -> GET /debug/slow
//   * folds per-endpoint and per-canonical-key latency histograms into
//     /metrics (Prometheus labels) and /stats
//   * appends one JSON line per request to the access log (opt-in via
//     wfqd --access-log PATH|-)
//
// The observer is borrowed by both HttpServer (which produces records)
// and QueryService (which serves the debug endpoints); the caller —
// wfqd's main, or a test — owns it and keeps it alive across both.
// record() is thread-safe; the span summary is aggregated on the
// calling worker thread, which is the thread that ran the request, so
// the summary covers exactly that request's spans.
//
// logrotate support: request_access_log_reopen() is async-signal-safe
// (one relaxed atomic store) — wfqd's SIGHUP handler calls it, and the
// next access-log line closes and reopens the file at the same path,
// landing in the fresh file the rotator left behind.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/ring.h"
#include "server/json.h"

namespace wflog::server {

/// Mutable per-request scratchpad threaded through Router handlers.
/// Microsecond fields are wall-clock slices of one request; the server
/// guarantees queue_us/wall_us, handlers fill the pipeline split.
struct RequestContext {
  std::uint64_t seq = 0;   // monotonic per-server request number
  std::string id;          // client's X-Request-Id or generated "wfq-<seq>"
  double queue_us = 0;     // accept/keep-alive queue -> worker pickup
  double parse_us = 0;     // body + query parse
  double cache_us = 0;     // result-cache lookup + insert
  double eval_us = 0;      // engine evaluation (0 on a cache hit)
  double serialize_us = 0; // response rendering + wire serialization
  double wall_us = 0;      // dispatch + serialization wall (server-set)
  int cache = -1;          // -1 = not applicable, 0 = miss, 1 = hit
  std::size_t shards = 0;  // shards the evaluation scattered over; 0 = none
  std::string canonical_key;  // canonical pattern key (core/pattern.h)
  std::string stop_reason;    // "none" | "deadline" | "cancelled" | ...
  std::string query;          // query text, for slow capture
  std::string plan;           // optimized pattern text, for slow capture
  std::size_t span_mark = 0;  // tracer position at handler entry
  bool has_span_mark = false;
};

/// Immutable summary of one finished (or dropped) request.
struct RequestRecord {
  std::uint64_t seq = 0;
  std::string id;
  std::uint64_t ts_ms = 0;  // unix wall-clock completion time
  std::string method;
  std::string target;
  int status = 0;           // 408 = read timeout, 499 = send failed
  std::size_t bytes = 0;    // response body bytes
  bool dropped = false;     // response never reached the client
  double queue_us = 0;
  double parse_us = 0;
  double cache_us = 0;
  double eval_us = 0;
  double serialize_us = 0;
  double wall_us = 0;
  int cache = -1;
  std::size_t shards = 0;
  std::string canonical_key;
  std::string stop_reason;
};

struct ObserverOptions {
  std::size_t requests_capacity = 256;  // /debug/requests ring
  std::size_t slow_capacity = 32;       // /debug/slow ring
  /// Slow-capture threshold on wall_us: < 0 disables capture, 0 captures
  /// every request (CI's forced slow path), N captures wall_us >= N.
  std::int64_t slow_us = -1;
  /// "" = no access log, "-" = stdout, else a file path (appended).
  std::string access_log_path;
};

class RequestObserver {
 public:
  /// Opens the access log eagerly; throws wflog::Error when the path
  /// cannot be opened (fail at startup, not on the first request).
  explicit RequestObserver(ObserverOptions options);
  ~RequestObserver();
  RequestObserver(const RequestObserver&) = delete;
  RequestObserver& operator=(const RequestObserver&) = delete;

  /// Folds one finished request in: rings, histograms, access log, slow
  /// capture. MUST run on the worker thread that served the request so
  /// the span summary (tracer thread buffer) attributes correctly.
  void record(RequestRecord rec, const RequestContext& ctx);

  /// Appends one {"event": kind, "ts_ms": .., ...fields} line to the
  /// access log (no-op when the log is off). Off the request path — used
  /// for server lifecycle lines such as health transitions.
  void log_event(const std::string& kind, JsonValue fields);

  /// Marks the file-backed access log for close-and-reopen before the
  /// next line — async-signal-safe, so a SIGHUP handler may call it
  /// directly (logrotate's moved the file; we reopen the path).
  void request_access_log_reopen() noexcept {
    reopen_requested_.store(true, std::memory_order_relaxed);
  }

  /// {"requests": [oldest..newest], "capacity": N, "evicted": N}
  JsonValue requests_json() const;
  /// {"slow": [oldest..newest], "threshold_ms": .., "evicted": N}
  JsonValue slow_json() const;
  /// Aggregate block for /stats.
  JsonValue stats_json() const;
  /// Per-endpoint + per-canonical-key latency histograms in Prometheus
  /// text exposition format, appended to the registry scrape by /metrics.
  std::string prometheus_text() const;

  bool access_log_enabled() const noexcept { return log_ != nullptr; }
  std::int64_t slow_us() const noexcept { return options_.slow_us; }
  std::uint64_t requests_seen() const noexcept {
    return requests_seen_.load(std::memory_order_relaxed);
  }

 private:
  struct Hist {
    std::vector<std::uint64_t> buckets;  // bounds_.size() + 1 (+Inf)
    double sum = 0;
    std::uint64_t count = 0;
  };
  struct SlowCapture {
    RequestRecord rec;
    std::string query;
    std::string plan;
    JsonValue spans;  // [{"span":..,"count":..,"total_us":..,"max_us":..}]
  };

  void observe_labeled(std::map<std::string, Hist>& family,
                       const std::string& key, std::size_t max_keys,
                       double seconds);
  void write_access_line(const RequestRecord& rec, bool slow);
  /// Writes one line under log_mu_, honoring a pending reopen request.
  void write_line(const std::string& text);
  void maybe_reopen_locked();

  const ObserverOptions options_;
  const std::vector<double> bounds_;
  obs::BoundedRing<RequestRecord> requests_;
  obs::BoundedRing<SlowCapture> slow_;

  mutable std::mutex hist_mu_;
  std::map<std::string, Hist> by_endpoint_;
  std::map<std::string, Hist> by_key_;

  std::mutex log_mu_;
  std::unique_ptr<std::ofstream> log_file_;  // null when stdout or disabled
  std::ostream* log_ = nullptr;              // non-null = access log on
  std::atomic<bool> reopen_requested_{false};

  std::atomic<std::uint64_t> requests_seen_{0};
  std::atomic<std::uint64_t> dropped_seen_{0};
  std::atomic<std::uint64_t> slow_captured_{0};
  std::atomic<std::uint64_t> access_lines_{0};
};

}  // namespace wflog::server
