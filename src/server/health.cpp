#include "server/health.h"

#include <algorithm>

#include "obs/telemetry.h"

namespace wflog::server {

namespace {

void export_state_metrics(HealthState to) {
  WFLOG_TELEMETRY(t) {
    t->metrics
        .gauge("wflog_server_health_state",
               "Server health: 0 = healthy, 1 = degraded, 2 = recovering")
        ->set(static_cast<double>(static_cast<int>(to)));
    t->metrics
        .counter("wflog_server_health_transitions_total",
                 "Health state machine transitions")
        ->inc();
  }
}

}  // namespace

const char* to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kRecovering: return "recovering";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthOptions options, RecoverFn recover,
                             TransitionFn on_transition)
    : options_(options),
      recover_(std::move(recover)),
      on_transition_(std::move(on_transition)) {
  options_.backoff_initial = std::max(options_.backoff_initial,
                                      std::chrono::milliseconds(1));
  options_.backoff_cap =
      std::max(options_.backoff_cap, options_.backoff_initial);
  backoff_ = options_.backoff_initial;
  // Publish the gauge at 0 from boot: "alert on state != 0" must not
  // confuse a server that never degraded with one that never scraped.
  WFLOG_TELEMETRY(t) {
    t->metrics
        .gauge("wflog_server_health_state",
               "Server health: 0 = healthy, 1 = degraded, 2 = recovering")
        ->set(0.0);
  }
  if (recover_ != nullptr) {
    thread_ = std::thread([this] { recovery_loop(); });
  }
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::degrade(std::string reason) {
  std::unique_lock<std::mutex> lock(mu_);
  last_error_ = reason;
  if (state() != HealthState::kHealthy) return;  // already being handled
  ++degradations_;
  gave_up_ = false;
  attempts_this_outage_ = 0;
  backoff_ = options_.backoff_initial;
  WFLOG_TELEMETRY(t) {
    t->metrics
        .counter("wflog_server_health_degradations_total",
                 "Entries into degraded (read-only) mode")
        ->inc();
  }
  transition_locked(lock, HealthState::kDegraded, reason);
  cv_.notify_all();
}

HealthStats HealthMonitor::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  HealthStats s;
  s.state = state();
  s.transitions = transitions_;
  s.degradations = degradations_;
  s.attempts = attempts_;
  s.recoveries = recoveries_;
  s.gave_up = gave_up_;
  s.last_error = last_error_;
  s.next_backoff = backoff_;
  return s;
}

int HealthMonitor::retry_after_seconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto ms = backoff_.count();
  return static_cast<int>(std::max<long long>(1, (ms + 999) / 1000));
}

void HealthMonitor::transition_locked(std::unique_lock<std::mutex>& lock,
                                      HealthState to,
                                      const std::string& detail) {
  const HealthState from = state();
  if (from == to) return;
  state_.store(to, std::memory_order_release);
  ++transitions_;
  export_state_metrics(to);
  if (on_transition_ != nullptr) {
    // Copy what the callback needs, then run it unlocked: it may log,
    // scrape stats, or otherwise re-enter the monitor.
    const TransitionFn cb = on_transition_;
    const std::string what = detail;
    lock.unlock();
    cb(from, to, what);
    lock.lock();
  }
}

void HealthMonitor::recovery_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (state() != HealthState::kDegraded || gave_up_) {
      cv_.wait(lock, [&] {
        return stopping_ ||
               (state() == HealthState::kDegraded && !gave_up_);
      });
      continue;
    }

    // Degraded: hold off for the current backoff (interruptible so stop()
    // never waits out a capped 5s sleep).
    if (cv_.wait_for(lock, backoff_, [&] { return stopping_; })) break;
    if (state() != HealthState::kDegraded || gave_up_) continue;

    ++attempts_;
    ++attempts_this_outage_;
    WFLOG_TELEMETRY(t) {
      t->metrics
          .counter("wflog_server_health_recovery_attempts_total",
                   "Store recovery probes launched while degraded")
          ->inc();
    }
    transition_locked(lock, HealthState::kRecovering,
                      "recovery attempt " +
                          std::to_string(attempts_this_outage_));

    std::string error;
    bool ok = false;
    lock.unlock();
    try {
      ok = recover_(&error);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    lock.lock();
    if (stopping_) break;

    if (ok) {
      ++recoveries_;
      attempts_this_outage_ = 0;
      backoff_ = options_.backoff_initial;
      WFLOG_TELEMETRY(t) {
        t->metrics
            .counter("wflog_server_health_recoveries_total",
                     "Successful store recoveries (degraded -> healthy)")
            ->inc();
      }
      transition_locked(lock, HealthState::kHealthy, "store recovered");
    } else {
      if (!error.empty()) last_error_ = error;
      backoff_ = std::min(options_.backoff_cap, backoff_ * 2);
      if (options_.max_attempts > 0 &&
          attempts_this_outage_ >= options_.max_attempts) {
        gave_up_ = true;
        transition_locked(lock, HealthState::kDegraded,
                          "giving up after " +
                              std::to_string(attempts_this_outage_) +
                              " attempts: " + error);
      } else {
        transition_locked(lock, HealthState::kDegraded,
                          error.empty() ? "recovery failed" : error);
      }
    }
  }
}

}  // namespace wflog::server
