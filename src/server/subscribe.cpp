#include "server/subscribe.h"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.h"

namespace wflog::server {
namespace {

using Clock = std::chrono::steady_clock;

/// Wait slice between interruption checks: a draining server ends every
/// consumer within one slice, well inside the drain grace period.
constexpr auto kWaitSlice = std::chrono::milliseconds(250);

void publish_active_gauge(std::size_t active) {
  WFLOG_TELEMETRY(t) {
    t->metrics
        .gauge("wflog_server_subscriptions_active",
               "Standing-query subscriptions currently registered")
        ->set(static_cast<double>(active));
  }
}

}  // namespace

SubscriptionRegistry::SubscriptionRegistry(SubscribeOptions options)
    : options_(options) {
  options_.max_subscriptions =
      std::max<std::size_t>(1, options_.max_subscriptions);
  options_.pending_cap = std::max<std::size_t>(1, options_.pending_cap);
}

std::shared_ptr<Subscription> SubscriptionRegistry::create(
    std::string query_text, Query parsed, std::string cache_key_base,
    std::size_t monitor_id, std::uint64_t fed_raw,
    std::vector<std::string> initial_events) {
  std::lock_guard lock(mu_);
  if (subs_.size() >= options_.max_subscriptions) return nullptr;
  auto sub = std::make_shared<Subscription>();
  sub->id = "sub-" + std::to_string(next_id_++);
  sub->query_text = std::move(query_text);
  sub->parsed = std::move(parsed);
  sub->cache_key_base = std::move(cache_key_base);
  sub->monitor_id = monitor_id;
  sub->fed_raw = fed_raw;
  for (std::string& json : initial_events) {
    sub->pending.push_back(SubEvent{sub->next_seq++, std::move(json)});
  }
  subs_.emplace(sub->id, sub);
  ++created_total_;
  publish_active_gauge(subs_.size());
  cv_.notify_all();
  return sub;
}

std::shared_ptr<Subscription> SubscriptionRegistry::find(
    const std::string& id) const {
  std::lock_guard lock(mu_);
  const auto it = subs_.find(id);
  return it == subs_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Subscription>> SubscriptionRegistry::live()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::shared_ptr<Subscription>> out;
  out.reserve(subs_.size());
  for (const auto& [id, sub] : subs_) out.push_back(sub);
  return out;
}

bool SubscriptionRegistry::enqueue(Subscription& sub,
                                   std::vector<std::string> events,
                                   std::uint64_t raw) {
  bool overflow = false;
  {
    std::lock_guard lock(mu_);
    sub.fed_raw += raw;
    for (std::string& json : events) {
      if (sub.pending.size() >= options_.pending_cap) {
        // Slow-consumer policy: the consumer never acknowledged and the
        // retained backlog hit the cap — drop the whole subscription
        // (visibly, with a terminal reason) rather than grow unboundedly
        // or silently skip events (which would break exactly-once).
        sub.closed = true;
        sub.close_reason = "overflow";
        subs_.erase(sub.id);
        ++overflow_dropped_;
        overflow = true;
        break;
      }
      sub.pending.push_back(SubEvent{sub.next_seq++, std::move(json)});
    }
    publish_active_gauge(subs_.size());
  }
  cv_.notify_all();
  WFLOG_TELEMETRY(t) {
    if (overflow) {
      t->metrics
          .counter("wflog_server_subscribe_overflow_total",
                   "Subscriptions dropped by the slow-consumer policy "
                   "(unacknowledged backlog hit the cap)")
          ->inc();
    }
  }
  return !overflow;
}

bool SubscriptionRegistry::close(const std::string& id, std::string reason) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard lock(mu_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return false;
    sub = it->second;
    sub->closed = true;
    sub->close_reason = std::move(reason);
    subs_.erase(it);
    publish_active_gauge(subs_.size());
  }
  cv_.notify_all();
  return true;
}

void SubscriptionRegistry::set_paused(bool paused) {
  {
    std::lock_guard lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

bool SubscriptionRegistry::paused() const {
  std::lock_guard lock(mu_);
  return paused_;
}

void SubscriptionRegistry::ack_locked(Subscription& sub,
                                      std::uint64_t after) {
  while (!sub.pending.empty() && sub.pending.front().seq <= after) {
    sub.pending.pop_front();
    ++acked_total_;
  }
}

SubPollResult SubscriptionRegistry::poll(
    const std::string& id, std::uint64_t after, std::int64_t wait_ms,
    std::size_t max_events, const std::function<bool()>& interrupted) {
  SubPollResult out;
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard lock(mu_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return out;
    sub = it->second;
  }
  out.found = true;
  out.next_after = after;

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max<std::int64_t>(
                         0, wait_ms));
  std::unique_lock lock(mu_);
  ack_locked(*sub, after);
  while (sub->pending.empty() && !sub->closed && !paused_) {
    const auto now = Clock::now();
    if (now >= deadline) break;
    if (interrupted && interrupted()) break;
    const auto slice = std::min<Clock::duration>(kWaitSlice, deadline - now);
    cv_.wait_for(lock, slice);
  }
  out.paused = paused_;
  out.closed = sub->closed;
  out.close_reason = sub->close_reason;
  if (!paused_) {
    const std::size_t n =
        max_events == 0 ? sub->pending.size()
                        : std::min(max_events, sub->pending.size());
    out.events.assign(sub->pending.begin(),
                      sub->pending.begin() + static_cast<std::ptrdiff_t>(n));
    if (n > 0) out.next_after = out.events.back().seq;
    out.pending_left = sub->pending.size() - n;
    sub->delivered += n;
    delivered_total_ += n;
  } else {
    out.pending_left = sub->pending.size();
  }
  return out;
}

std::string SubscriptionRegistry::stream(
    const std::string& id, std::uint64_t after, std::int64_t heartbeat_ms,
    const std::function<bool(const SubEvent&)>& on_event,
    const std::function<bool()>& on_heartbeat,
    const std::function<bool()>& interrupted) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard lock(mu_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return "not-found";
    if (streams_ >= options_.max_streams) return "busy";
    ++streams_;
    sub = it->second;
    ack_locked(*sub, after);
  }

  const auto beat = std::chrono::milliseconds(
      std::max<std::int64_t>(100, heartbeat_ms));
  auto last_activity = Clock::now();
  std::uint64_t cursor = after;
  std::string end_reason;

  while (end_reason.empty()) {
    std::vector<SubEvent> batch;
    bool closed = false;
    std::string close_reason;
    {
      std::unique_lock lock(mu_);
      // Collect undelivered events (seq > cursor; acked ones are gone,
      // retained-but-streamed ones sit at the front below the cursor).
      if (!paused_) {
        for (const SubEvent& e : sub->pending) {
          if (e.seq <= cursor) continue;
          batch.push_back(e);
          if (batch.size() >= 64) break;
        }
      }
      closed = sub->closed;
      close_reason = sub->close_reason;
      if (batch.empty() && !closed) {
        cv_.wait_for(lock, kWaitSlice);
      } else if (!batch.empty()) {
        sub->delivered += batch.size();
        delivered_total_ += batch.size();
      }
    }
    for (const SubEvent& e : batch) {
      if (!on_event(e)) {
        end_reason = "client";
        break;
      }
      cursor = e.seq;
    }
    if (!end_reason.empty()) break;
    if (batch.empty() && closed) {
      end_reason = close_reason.empty() ? "closed" : close_reason;
      break;
    }
    if (interrupted && interrupted()) {
      end_reason = "draining";
      break;
    }
    const auto now = Clock::now();
    if (!batch.empty()) {
      last_activity = now;
    } else if (now - last_activity >= beat) {
      last_activity = now;
      {
        std::lock_guard lock(mu_);
        ++heartbeats_total_;
      }
      WFLOG_TELEMETRY(t) {
        t->metrics
            .counter("wflog_server_subscribe_heartbeats_total",
                     "Keep-alive heartbeats written to subscribe streams")
            ->inc();
      }
      if (!on_heartbeat()) {
        end_reason = "client";
        break;
      }
    }
  }

  {
    std::lock_guard lock(mu_);
    --streams_;
  }
  cv_.notify_all();
  return end_reason;
}

SubscribeStats SubscriptionRegistry::stats() const {
  std::lock_guard lock(mu_);
  SubscribeStats s;
  s.active = subs_.size();
  s.streams = streams_;
  for (const auto& [id, sub] : subs_) s.pending += sub->pending.size();
  s.paused = paused_;
  s.created_total = created_total_;
  s.delivered_total = delivered_total_;
  s.acked_total = acked_total_;
  s.heartbeats_total = heartbeats_total_;
  s.overflow_dropped = overflow_dropped_;
  return s;
}

std::size_t SubscriptionRegistry::size() const {
  std::lock_guard lock(mu_);
  return subs_.size();
}

}  // namespace wflog::server
