#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.h"

namespace wflog::server {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

BackoffSchedule::BackoffSchedule(const ClientBackoff& options)
    : options_(options), rng_(options.jitter_seed) {
  options_.initial = std::max(options_.initial, std::chrono::milliseconds(1));
  options_.cap = std::max(options_.cap, options_.initial);
}

std::optional<std::chrono::milliseconds> BackoffSchedule::next() {
  if (attempt_ >= options_.max_retries) return std::nullopt;
  const std::chrono::milliseconds remaining = options_.budget - slept_;
  if (remaining <= std::chrono::milliseconds(0)) return std::nullopt;
  ++attempt_;
  // base = min(cap, initial * 2^(attempt-1)), computed without overflow.
  std::chrono::milliseconds base = options_.initial;
  for (int i = 1; i < attempt_ && base < options_.cap; ++i) base *= 2;
  base = std::min(base, options_.cap);
  // Jitter into [base/2, base] so a retrying fleet decorrelates; the
  // stream is a pure function of the seed, so tests can predict it.
  const auto half = base.count() / 2;
  const auto span = base.count() - half;
  std::chrono::milliseconds delay(
      half + (span > 0
                  ? static_cast<long long>(splitmix64(rng_) %
                                           static_cast<std::uint64_t>(span + 1))
                  : 0));
  delay = std::min(delay, remaining);  // never sleep past the budget
  slept_ += delay;
  return delay;
}

namespace {

std::string to_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

}  // namespace

const std::string* ClientResponse::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeout_ms)
    : HttpClient(std::move(host), port, [&] {
        ClientOptions o;
        o.timeout_ms = timeout_ms;
        return o;
      }()) {}

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      timeout_ms_(options_.timeout_ms) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() noexcept {
  if (fd_ >= 0) {
    io().close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void HttpClient::sleep_for(std::chrono::milliseconds delay) {
  if (options_.sleep_fn != nullptr) {
    options_.sleep_fn(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

void HttpClient::connect_once() {
  disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("client socket() failed: ") +
                  std::strerror(errno));
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    disconnect();
    throw IoError("client: invalid address '" + host_ + "'");
  }
  if (io().connect(fd_, reinterpret_cast<::sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    disconnect();
    throw IoError("client: connect to " + host_ + ":" +
                  std::to_string(port_) + " failed: " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void HttpClient::connect_or_throw() {
  // Connecting leaves no state on the server, so every connect failure is
  // safely retryable under the backoff schedule.
  BackoffSchedule schedule(options_.backoff);
  while (true) {
    try {
      connect_once();
      return;
    } catch (const IoError&) {
      const std::optional<std::chrono::milliseconds> delay = schedule.next();
      if (!delay.has_value()) throw;
      sleep_for(*delay);
    }
  }
}

ClientResponse HttpClient::get(const std::string& target,
                               const Headers& extra) {
  return request("GET", target, "", "", extra);
}

ClientResponse HttpClient::post(const std::string& target,
                                const std::string& body,
                                const std::string& content_type,
                                const Headers& extra) {
  return request("POST", target, body, content_type, extra);
}

ClientResponse HttpClient::request(const std::string& method,
                                   const std::string& target,
                                   const std::string& body,
                                   const std::string& content_type,
                                   const Headers& extra) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const auto& [name, value] : extra) {
    wire += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    if (!content_type.empty()) {
      wire += "content-type: " + content_type + "\r\n";
    }
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  // Retry across a dead keep-alive connection only when replaying cannot
  // double-apply: GET/HEAD by HTTP semantics, anything else only if zero
  // request bytes left this process (checked inside try_once).
  const bool idempotent = method == "GET" || method == "HEAD";
  const bool fresh = fd_ < 0;
  if (fresh) connect_or_throw();
  if (std::optional<ClientResponse> r = try_once(wire, fresh, idempotent)) {
    return *r;
  }
  // The keep-alive connection was stale and nothing reached the server —
  // one immediate replay over a fresh connection is safe for any method
  // (this is the classic idle-close race).
  connect_or_throw();
  if (!idempotent) {
    std::optional<ClientResponse> r =
        try_once(wire, /*fresh_connection=*/true, idempotent);
    if (!r.has_value()) {
      disconnect();
      throw IoError("client: connection closed before any response");
    }
    return *r;
  }
  // Idempotent requests can never double-apply, so transport failures keep
  // retrying under one bounded schedule (connect failures inside the loop
  // consult the same schedule — one cap on attempts AND total sleep).
  BackoffSchedule schedule(options_.backoff);
  while (true) {
    try {
      if (fd_ < 0) connect_once();
      std::optional<ClientResponse> r =
          try_once(wire, /*fresh_connection=*/true, idempotent);
      if (r.has_value()) return *r;
      throw IoError("client: connection closed before any response");
    } catch (const IoError&) {
      disconnect();
      const std::optional<std::chrono::milliseconds> delay = schedule.next();
      if (!delay.has_value()) throw;
      sleep_for(*delay);
    }
  }
}

ClientResponse HttpClient::raw(const std::string& bytes) {
  if (fd_ < 0) connect_or_throw();
  std::optional<ClientResponse> r =
      try_once(bytes, /*fresh_connection=*/true, /*idempotent=*/false);
  if (!r.has_value()) {
    disconnect();
    throw IoError("client: connection closed before any response");
  }
  return *r;
}

ClientResponse HttpClient::stream(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::function<bool(std::string_view)>& on_chunk,
    const Headers& extra) {
  // Always a fresh connection: the stream monopolizes it (the server
  // closes afterwards), and replaying a partially consumed stream would
  // re-deliver events.
  disconnect();
  connect_or_throw();
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const auto& [name, value] : extra) {
    wire += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    wire += "content-type: application/json\r\n";
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  if (!send_all(io(), fd_, wire)) {
    disconnect();
    throw IoError(std::string("client: send failed: ") +
                  std::strerror(errno));
  }

  // Per-READ timeout: a stream may legitimately live for hours, but each
  // quiet gap is bounded (server heartbeats are well inside timeout_ms_).
  auto fill = [&]() -> bool {
    const int r = poll_readable(io(), fd_, timeout_ms_);
    if (r <= 0) throw IoError("client: stream read timed out");
    return recv_some(io(), fd_, buf_) > 0;
  };
  auto fill_or_throw = [&](const char* what) {
    if (!fill()) {
      disconnect();
      throw IoError(std::string("client: connection closed ") + what);
    }
  };

  std::size_t header_end = std::string::npos;
  while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    fill_or_throw("mid-response");
  }

  ClientResponse resp;
  {
    std::size_t line_end = buf_.find("\r\n");
    const std::string status_line = buf_.substr(0, line_end);
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos) {
      disconnect();
      throw IoError("client: malformed status line: " + status_line);
    }
    resp.status = std::atoi(status_line.c_str() + sp + 1);
    std::size_t line_start = line_end + 2;
    while (line_start < header_end) {
      line_end = buf_.find("\r\n", line_start);
      const std::string line =
          buf_.substr(line_start, line_end - line_start);
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        resp.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                                  trim(line.substr(colon + 1)));
      }
      line_start = line_end + 2;
    }
  }
  const std::size_t body_at = header_end + 4;

  const std::string* te = resp.header("transfer-encoding");
  if (te == nullptr || te->find("chunked") == std::string::npos) {
    // Plain response (typically an error status): read it whole.
    std::size_t content_length = 0;
    if (const std::string* cl = resp.header("content-length")) {
      content_length = static_cast<std::size_t>(std::atoll(cl->c_str()));
    }
    while (buf_.size() < body_at + content_length) {
      fill_or_throw("mid-body");
    }
    resp.body = buf_.substr(body_at, content_length);
    disconnect();
    return resp;
  }
  buf_.erase(0, body_at);

  while (true) {
    std::size_t line_end = std::string::npos;
    while ((line_end = buf_.find("\r\n")) == std::string::npos) {
      fill_or_throw("mid-stream (no terminal chunk)");
    }
    std::size_t size = 0;
    bool any = false;
    for (std::size_t i = 0; i < line_end; ++i) {
      const char c = buf_[i];
      if (c == ';') break;  // chunk extensions: ignored
      int v = -1;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
      if (v < 0) {
        disconnect();
        throw IoError("client: malformed chunk size: " +
                      buf_.substr(0, line_end));
      }
      size = size * 16 + static_cast<std::size_t>(v);
      any = true;
    }
    if (!any) {
      disconnect();
      throw IoError("client: empty chunk size line");
    }
    buf_.erase(0, line_end + 2);
    if (size == 0) {
      // Terminal chunk: the stream completed cleanly.
      disconnect();
      return resp;
    }
    while (buf_.size() < size + 2) {
      fill_or_throw("mid-chunk");
    }
    const bool keep = on_chunk(std::string_view(buf_).substr(0, size));
    buf_.erase(0, size + 2);
    if (!keep) {
      disconnect();
      return resp;
    }
  }
}

std::optional<ClientResponse> HttpClient::try_once(const std::string& wire,
                                                   bool fresh_connection,
                                                   bool idempotent) {
  std::size_t written = 0;
  if (!send_all(io(), fd_, wire, &written)) {
    if (fresh_connection) {
      disconnect();
      throw IoError(std::string("client: send failed: ") +
                    std::strerror(errno));
    }
    if (!idempotent && written > 0) {
      // Part of a non-idempotent request reached the wire before the
      // connection died; the server may act on it. Replaying would risk a
      // double-submit (e.g. duplicate /ingest records) — surface instead.
      disconnect();
      throw IoError(
          "client: connection lost mid-request; not retried "
          "(non-idempotent request was partially sent)");
    }
    return std::nullopt;  // stale keep-alive, nothing sent — reconnect
  }
  try {
    return read_response();
  } catch (const IoError&) {
    if (fresh_connection) throw;
    // EOF before any response bytes on a reused connection. For GET/HEAD
    // this is the classic idle-close race and a replay is safe. For POST
    // the request was FULLY written — the server may have processed it and
    // died before answering, so a silent replay could double-apply it.
    if (buf_.empty() && idempotent) return std::nullopt;
    throw;
  }
}

ClientResponse HttpClient::read_response() {
  // Accumulate until the header block is complete, then until the body
  // (content-length) is in. The deadline covers the whole response.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  auto fill = [&]() -> bool {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (left <= 0) throw IoError("client: response timed out");
    const int r = poll_readable(io(), fd_, static_cast<int>(left));
    if (r <= 0) throw IoError("client: response timed out");
    return recv_some(io(), fd_, buf_) > 0;
  };

  std::size_t header_end = std::string::npos;
  while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    if (!fill()) {
      disconnect();
      throw IoError("client: connection closed mid-response");
    }
  }

  ClientResponse resp;
  std::size_t line_start = 0;
  std::size_t line_end = buf_.find("\r\n");
  {
    const std::string status_line = buf_.substr(0, line_end);
    // "HTTP/1.1 200 OK"
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos) {
      disconnect();
      throw IoError("client: malformed status line: " + status_line);
    }
    resp.status = std::atoi(status_line.c_str() + sp + 1);
  }
  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = buf_.find("\r\n", line_start);
    const std::string line = buf_.substr(line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      resp.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                                trim(line.substr(colon + 1)));
    }
    line_start = line_end + 2;
  }

  std::size_t content_length = 0;
  if (const std::string* cl = resp.header("content-length")) {
    content_length = static_cast<std::size_t>(std::atoll(cl->c_str()));
  }
  const std::size_t body_at = header_end + 4;
  while (buf_.size() < body_at + content_length) {
    if (!fill()) {
      disconnect();
      throw IoError("client: connection closed mid-body");
    }
  }
  resp.body = buf_.substr(body_at, content_length);
  buf_.erase(0, body_at + content_length);

  if (const std::string* conn = resp.header("connection")) {
    if (*conn == "close") disconnect();
  }
  return resp;
}

}  // namespace wflog::server
