#pragma once

// SocketIo — the injectable seam between wfqd and the POSIX socket layer,
// mirroring what FileIo (src/log/fileio.h) does for durability: every
// accept/recv/send/connect the server or client performs goes through this
// interface, so tests can script the failures production networks produce
// (short reads/writes, EINTR/EAGAIN storms, ECONNRESET mid-request, accept
// failures, per-op delays for slow-loris) deterministically and without
// root, tc, or iptables.
//
//   * RealSocketIo forwards straight to the syscalls (the default; the
//     process-wide instance is `real_socket_io()`).
//   * FaultSocketIo wraps another SocketIo and injects scripted faults by
//     op-count. Unlike FaultIo it IS thread-safe: the worker pool does
//     socket IO from many threads at once, so fault matching is guarded by
//     a mutex (the wrapped syscall itself runs outside the lock).
//
// Faults address ops by a 1-based index counted per fault, over the ops
// matching that fault's filter: {op = kRecv, at_op = 3, kind = kConnReset}
// means "the third recv() anywhere on the server dies with ECONNRESET".
// `count` widens the window to consecutive matching ops; kStickySocket
// makes it permanent until clear_faults().

#include <sys/socket.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

namespace wflog::server {

class SocketIo {
 public:
  virtual ~SocketIo() = default;

  /// ::accept(listen_fd) — new connection fd, or -1 with errno set.
  virtual int accept(int listen_fd) = 0;
  /// ::recv — bytes read, 0 on orderly close, -1 with errno set.
  virtual long recv(int fd, char* buf, std::size_t len) = 0;
  /// ::send with MSG_NOSIGNAL — bytes written (possibly short), -1 on error.
  virtual long send(int fd, const char* data, std::size_t len) = 0;
  /// ::connect — 0 on success, -1 with errno set.
  virtual int connect(int fd, const sockaddr* addr, socklen_t len) = 0;
  /// Readability wait: 1 = readable, 0 = timeout, -1 = error. EINTR is the
  /// implementation's problem, not the caller's.
  virtual int poll_in(int fd, int timeout_ms) = 0;
  virtual int close(int fd) = 0;
  virtual int shutdown(int fd, int how) = 0;
};

/// Process-wide passthrough instance; the default when no seam is injected.
SocketIo& real_socket_io();

class RealSocketIo final : public SocketIo {
 public:
  int accept(int listen_fd) override;
  long recv(int fd, char* buf, std::size_t len) override;
  long send(int fd, const char* data, std::size_t len) override;
  int connect(int fd, const sockaddr* addr, socklen_t len) override;
  int poll_in(int fd, int timeout_ms) override;
  int close(int fd) override;
  int shutdown(int fd, int how) override;
};

/// `count` value meaning "every matching op from at_op onward, forever".
inline constexpr std::size_t kStickySocket =
    std::numeric_limits<std::size_t>::max();

struct SocketFault {
  enum class Op : std::uint8_t { kAny, kAccept, kRecv, kSend, kConnect };
  enum class Kind : std::uint8_t {
    kEintr,        // op fails with EINTR (callers are expected to retry)
    kEagain,       // op fails with EAGAIN (spurious readiness)
    kConnReset,    // op fails with ECONNRESET (peer vanished mid-request)
    kShortRead,    // recv is clamped to max_bytes (trickled request)
    kShortWrite,   // send is clamped to max_bytes (congested peer)
    kAcceptFail,   // accept fails with EMFILE (fd exhaustion)
    kConnectFail,  // connect fails with ECONNREFUSED
    kDelay,        // op sleeps delay_ms first, then runs for real (slow-loris)
  };

  Op op = Op::kAny;
  Kind kind = Kind::kEintr;
  std::size_t at_op = 1;      // 1-based index among ops matching `op`
  std::size_t count = 1;      // consecutive matching ops affected
  std::size_t max_bytes = 1;  // clamp for kShortRead / kShortWrite
  int delay_ms = 0;           // sleep for kDelay
};

/// Thread-safe fault-injecting wrapper. Faults are matched in the order
/// they were added; the first match decides the op's fate. Each fault
/// keeps its own per-filter op counter, so two faults with different
/// filters trigger independently.
class FaultSocketIo final : public SocketIo {
 public:
  /// Wraps `base` (must outlive this object); real_socket_io() by default.
  explicit FaultSocketIo(SocketIo* base = nullptr);

  void add_fault(SocketFault fault);
  /// Drops every fault and resets all op counters ("the network heals").
  void clear_faults();

  struct Stats {
    std::uint64_t ops = 0;       // ops that went through the seam
    std::uint64_t injected = 0;  // ops a fault fired on (incl. delays)
  };
  Stats stats() const;

  int accept(int listen_fd) override;
  long recv(int fd, char* buf, std::size_t len) override;
  long send(int fd, const char* data, std::size_t len) override;
  int connect(int fd, const sockaddr* addr, socklen_t len) override;
  int poll_in(int fd, int timeout_ms) override;
  int close(int fd) override;
  int shutdown(int fd, int how) override;

 private:
  struct Armed {
    SocketFault fault;
    std::size_t seen = 0;  // matching ops observed so far
  };
  struct Decision {
    bool inject = false;
    SocketFault::Kind kind = SocketFault::Kind::kEintr;
    std::size_t max_bytes = 0;
    int delay_ms = 0;
  };

  /// Counts the op and picks the first matching armed fault (under lock);
  /// the caller applies the decision outside the lock.
  Decision decide(SocketFault::Op op);

  SocketIo* base_;
  mutable std::mutex mu_;
  std::vector<Armed> faults_;
  Stats stats_;
};

}  // namespace wflog::server
