#include "server/handlers.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "core/join.h"
#include "core/optimizer.h"
#include "core/pattern.h"
#include "core/printer.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "server/json.h"

// Stamped by the build (src/CMakeLists.txt) for GET /version.
#ifndef WFLOG_VERSION_STRING
#define WFLOG_VERSION_STRING "0.0.0"
#endif

namespace wflog::server {
namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Marks the tracer position at handler entry so a slow capture can
/// summarize exactly this request's spans (observer.h).
void mark_spans(RequestContext& ctx) {
  WFLOG_TELEMETRY(t) {
    ctx.span_mark = t->tracer.thread_mark();
    ctx.has_span_mark = true;
  }
}

/// JSON scalar -> attribute Value; arrays/objects are not attribute
/// material and fail the request.
Value to_attr_value(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      return Value{};
    case JsonValue::Kind::kBool:
      return Value(v.as_bool());
    case JsonValue::Kind::kInt:
      return Value(v.as_int());
    case JsonValue::Kind::kDouble:
      return Value(v.as_double());
    case JsonValue::Kind::kString:
      return Value(v.as_string());
    default:
      throw Error("attribute values must be JSON scalars");
  }
}

/// Borrow an object's members as NamedAttrs (string_views into `obj`,
/// which must outlive the call they are passed to).
NamedAttrs to_named_attrs(const JsonValue* obj) {
  NamedAttrs attrs;
  if (obj == nullptr || obj->is_null()) return attrs;
  if (!obj->is_object()) throw Error("\"in\"/\"out\" must be objects");
  for (const auto& [name, value] : obj->members()) {
    attrs.emplace_back(name, to_attr_value(value));
  }
  return attrs;
}

/// Renders one QueryResult as the /query (and /batch slot) shape. `limit`
/// caps rendered incidents (the response size), never the evaluation —
/// "total" always reports the full count.
JsonValue render_result(const QueryResult& r, std::size_t limit) {
  JsonValue out;
  if (!r.ok()) {
    out.set("error", r.error);
    return out;
  }
  out.set("pattern", r.parsed != nullptr ? to_text(*r.parsed) : "");
  out.set("optimized", r.executed != nullptr ? to_text(*r.executed) : "");
  out.set("instances", r.incidents.groups().size());
  out.set("total", r.total());
  out.set("complete", r.complete());
  out.set("stop_reason", std::string(stop_reason_name(r.stop_reason)));

  JsonArray groups;
  std::size_t rendered = 0;
  for (const IncidentSet::Group& g : r.incidents.groups()) {
    if (rendered >= limit) break;
    JsonArray incidents;
    for (const Incident& o : g.incidents) {
      if (rendered >= limit) break;
      JsonArray positions;
      for (const IsLsn n : o.positions()) {
        positions.emplace_back(static_cast<std::int64_t>(n));
      }
      incidents.emplace_back(std::move(positions));
      ++rendered;
    }
    JsonValue group;
    group.set("wid", static_cast<std::int64_t>(g.wid));
    group.set("incidents", std::move(incidents));
    groups.emplace_back(std::move(group));
  }
  out.set("incidents", std::move(groups));
  out.set("rendered", rendered);
  out.set("render_truncated", rendered < r.total());

  JsonValue timings;
  timings.set("parse_us", r.parse_us);
  timings.set("optimize_us", r.optimize_us);
  timings.set("eval_us", r.eval_us);
  out.set("timings", std::move(timings));
  return out;
}

std::size_t read_size(const JsonValue& body, std::string_view key,
                      std::size_t fallback) {
  const JsonValue* v = body.find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number() || v->as_int() < 0) {
    throw Error("\"" + std::string(key) + "\" must be a non-negative number");
  }
  return static_cast<std::size_t>(v->as_int());
}

/// Per-request cache opt-out: "Cache-Control: no-cache" skips the lookup
/// (the response is freshly evaluated) but the fresh result is still
/// stored — standard HTTP revalidation semantics.
bool no_cache_requested(const HttpRequest& req) {
  return req.header("cache-control").find("no-cache") !=
         std::string_view::npos;
}

void set_cache_header(HttpResponse& resp, bool hit) {
  resp.extra_headers.emplace_back("x-wfq-cache", hit ? "hit" : "miss");
}

/// A cache hit may have been populated by a DIFFERENT (canonically equal)
/// spelling of the pattern, whose stored trees would leak the populating
/// query's text through the "pattern"/"optimized" echo fields. Re-derive
/// both from the request's own parse — the optimizer is deterministic and
/// runs without touching the log, so a hit stays byte-identical to what an
/// uncached evaluation of THIS spelling would have returned.
void reecho_pattern_texts(JsonValue& slot, const Query& q,
                          const QueryEngine& engine,
                          const QueryResult& cached) {
  const std::string req_text = to_text(*q.pattern);
  if (cached.parsed != nullptr && to_text(*cached.parsed) == req_text) {
    return;  // the entry was populated by this very spelling
  }
  PatternPtr executed = q.pattern;
  if (engine.options().optimize) {
    executed =
        optimize(q.pattern, engine.cost_model(), engine.options().optimizer)
            .pattern;
  }
  for (auto& [k, v] : slot.members()) {
    if (k == "pattern") {
      v = JsonValue(req_text);
    } else if (k == "optimized") {
      v = JsonValue(to_text(*executed));
    }
  }
}

}  // namespace

QueryService::QueryService(std::optional<Log> initial, ServiceOptions options,
                           CancelToken drain, std::optional<LogStore> store)
    : options_(std::move(options)),
      drain_(std::move(drain)),
      monitor_(monitor_options()),
      store_(std::move(store)),
      subs_(options_.subscribe) {
  if (options_.cache_bytes > 0) {
    CacheOptions co;
    co.max_bytes = options_.cache_bytes;
    co.shards = options_.cache_shards;
    cache_ = std::make_unique<ResultCache>(co);
  }
  // Replay the initial log into the monitor so ingest continues its wid
  // sequence. The replay asserts wid identity: LogMonitor assigns wids
  // sequentially, so a log whose wids are not 1..N cannot be extended
  // in-place — queries still work, ingest reports 409.
  if (initial.has_value() && initial->size() > 0) {
    try {
      replay_into_monitor(*initial);
    } catch (const std::exception& e) {
      set_ingest_disabled(
          std::string("initial log could not seed the monitor: ") + e.what());
    }
  }
  last_bad_.clear();  // replay noise is not request-level bad events
  last_bad_dropped_ = 0;

  // Only a durable mirror can fail structurally mid-flight; a store-less
  // service has no degraded mode (its only failure is the 409 above).
  if (store_.has_value()) {
    HealthOptions ho;
    ho.backoff_initial = std::chrono::milliseconds(
        std::max<std::int64_t>(1, options_.recovery_backoff_ms));
    ho.backoff_cap = std::chrono::milliseconds(
        std::max<std::int64_t>(1, options_.recovery_backoff_cap_ms));
    ho.max_attempts = options_.max_recovery_attempts;
    health_ = std::make_unique<HealthMonitor>(
        ho, [this](std::string* error) { return recover_store(error); },
        options_.on_health_transition);
  }

  // Initial snapshot straight from the given log (no revalidation).
  auto state = std::make_shared<State>();
  state->version = version_seq_;
  if (initial.has_value() && initial->size() > 0) {
    state->log = std::move(initial);
    state->engine =
        std::make_unique<QueryEngine>(*state->log, options_.engine);
  }
  state_ = std::move(state);
}

MonitorOptions QueryService::monitor_options() {
  MonitorOptions mo;
  mo.keep_records = true;  // snapshot() is the rebuild path
  mo.bad_event_policy = options_.bad_event_policy;
  mo.quarantine_capacity = options_.quarantine_capacity;
  mo.negation_matches_sentinels =
      options_.engine.eval.negation_matches_sentinels;
  mo.on_bad_event = [this](const BadEvent& e) {
    // The per-request sink is capped like the monitor's quarantine ring: a
    // hostile ingest full of bad events must not grow memory unboundedly.
    if (last_bad_.size() >= options_.last_bad_cap) {
      ++last_bad_dropped_;
      return;
    }
    last_bad_.push_back(e);
  };
  return mo;
}

void QueryService::set_ingest_disabled(std::string reason) {
  ingest_enabled_ = false;
  std::lock_guard lock(ingest_reason_mu_);
  ingest_disabled_reason_ = std::move(reason);
}

std::string QueryService::ingest_disabled_reason() const {
  std::lock_guard lock(ingest_reason_mu_);
  return ingest_disabled_reason_;
}

bool QueryService::delivery_interrupted() const {
  return (server_ != nullptr && server_->draining()) ||
         (drain_ && drain_->load());
}

void QueryService::replay_into_monitor(const Log& log) {
  for (const LogRecord& l : log) {
    const std::string_view name = log.activity_name(l.activity);
    if (l.activity == log.start_symbol()) {
      const Wid got = monitor_.begin_instance();
      if (got != l.wid) {
        throw Error("initial log wid " + std::to_string(l.wid) +
                    " is not the monitor's next wid " + std::to_string(got));
      }
    } else if (l.activity == log.end_symbol()) {
      monitor_.end_instance(l.wid);
    } else {
      NamedAttrs in;
      NamedAttrs out;
      for (const AttrEntry& e : l.in) {
        in.emplace_back(log.interner().name(e.attr), e.value);
      }
      for (const AttrEntry& e : l.out) {
        out.emplace_back(log.interner().name(e.attr), e.value);
      }
      monitor_.record(l.wid, name, in, out);
    }
  }
}

bool QueryService::recover_store(std::string* error) {
  std::lock_guard lock(ingest_mu_);
  if (!store_.has_value()) {
    if (error != nullptr) *error = "no store to recover";
    return false;
  }
  try {
    // Reopen from what is durably on disk (quarantining any corrupt
    // suffix), then rebuild the monitor to match it exactly: acked
    // records were fsynced before they were acked, so they all survive;
    // at most the one unacked event that triggered the degrade (applied
    // to the monitor but never to the store, never reported "applied")
    // is dropped — which also heals any monitor/store divergence.
    const RecoveryReport report = store_->reopen_in_place();
    (void)report;
    const Log durable = store_->load();
    monitor_ = LogMonitor(monitor_options());
    if (durable.size() > 0) replay_into_monitor(durable);
    last_bad_.clear();
    last_bad_dropped_ = 0;
    rebuild_state();  // strictly newer snapshot version
    // Rebuilding the monitor dropped every standing query with it:
    // re-register them against the durable replay and reconcile delivery
    // (fed_raw skips the already-routed prefix), then resume.
    reattach_subscriptions();
    subs_.set_paused(false);
    ingest_enabled_ = true;
    {
      std::lock_guard reason_lock(ingest_reason_mu_);
      ingest_disabled_reason_.clear();
    }
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

namespace {

/// Sorted-unique insert preserving the IncidentList canonical invariant.
void insert_incident(IncidentList& list, const Incident& o) {
  const auto it = std::lower_bound(list.begin(), list.end(), o);
  if (it != list.end() && *it == o) return;
  list.insert(it, o);
}

}  // namespace

std::string QueryService::render_sub_event(const Query& parsed,
                                           const Incident& incident,
                                           const LogIndex& index) {
  if (parsed.where != nullptr) {
    // Filter with the UNOPTIMIZED pattern, exactly like the engine
    // (bindings live on the parsed tree): streamed events and a batch
    // /query of the same text must agree on every incident. The where
    // verdict depends only on records at the incident's own positions,
    // which are immutable once appended — so filtering against the
    // newest snapshot is sound for incidents matched at any version.
    IncidentSet one;
    one.add_group(incident.wid(), IncidentList{incident});
    const IncidentSet kept =
        filter_where(one, *parsed.pattern, *parsed.where, index, nullptr);
    if (kept.empty()) return {};
  }
  std::string json =
      "\"wid\":" + std::to_string(incident.wid()) + ",\"positions\":[";
  bool first = true;
  for (const IsLsn n : incident.positions()) {
    if (!first) json += ',';
    first = false;
    json += std::to_string(n);
  }
  json += ']';
  return json;
}

void QueryService::route_matches(const std::vector<LogMonitor::Match>& raw,
                                 const std::shared_ptr<const State>& st,
                                 std::uint64_t old_version) {
  const auto subs = subs_.live();
  if (subs.empty()) return;

  std::unordered_map<std::size_t, std::vector<const Incident*>> by_query;
  for (const LogMonitor::Match& m : raw) {
    by_query[m.query].push_back(&m.incident);
  }

  for (const auto& sub : subs) {
    std::vector<std::string> events;
    std::vector<const Incident*> delta;  // where-passing, for cache repair
    std::uint64_t raw_count = 0;
    if (const auto it = by_query.find(sub->monitor_id);
        it != by_query.end() && st->engine != nullptr) {
      raw_count = it->second.size();
      events.reserve(it->second.size());
      for (const Incident* o : it->second) {
        std::string json =
            render_sub_event(sub->parsed, *o, st->engine->index());
        if (!json.empty()) {
          events.push_back(std::move(json));
          delta.push_back(o);
        }
      }
    }
    if (!subs_.enqueue(*sub, std::move(events), raw_count)) {
      // Slow-consumer overflow: the registry already closed it; release
      // the monitor query so its per-instance state stops growing.
      monitor_.remove_query(sub->monitor_id);
      continue;
    }

    // Incremental cache repair: a complete cached result for this exact
    // query at the pre-ingest version plus the monitor's delta IS the
    // result at the new version (incremental == batch) — re-insert it
    // under the new key instead of letting the ingest invalidate it.
    if (cache_ == nullptr || !cache_->enabled()) continue;
    RunLimits produced;
    const auto old =
        cache_->peek(ResultCache::key(sub->parsed, old_version), &produced);
    if (old == nullptr || !old->ok() || !old->complete()) continue;
    auto repaired = std::make_shared<QueryResult>();
    repaired->parsed = old->parsed;
    repaired->executed = old->executed;
    repaired->where = old->where;
    repaired->parse_us = old->parse_us;
    repaired->optimize_us = old->optimize_us;
    repaired->eval_us = old->eval_us;
    repaired->estimated_cost_before = old->estimated_cost_before;
    repaired->estimated_cost_after = old->estimated_cost_after;
    repaired->shards_used = old->shards_used;
    repaired->stop_reason = old->stop_reason;
    std::map<Wid, IncidentList> merged;
    for (const IncidentSet::Group& g : old->incidents.groups()) {
      merged.emplace(g.wid, g.incidents);
    }
    for (const Incident* o : delta) {
      insert_incident(merged[o->wid()], *o);
    }
    for (auto& [wid, incidents] : merged) {
      repaired->incidents.add_group(wid, std::move(incidents));
    }
    cache_->insert(ResultCache::key(sub->parsed, st->version),
                   std::move(repaired), produced);
    ++cache_repairs_;
  }
}

void QueryService::reattach_subscriptions() {
  const auto subs = subs_.live();
  if (subs.empty()) return;
  const auto st = state();
  for (const auto& sub : subs) {
    // Re-register on the fresh monitor; backfill replays the durable log
    // deterministically, reproducing the exact raw match sequence the
    // subscription already consumed — plus anything that became durable
    // without having been routed yet. No guard: this history was already
    // admitted once.
    const std::size_t qid = monitor_.add_query(sub->parsed.pattern);
    std::vector<LogMonitor::Match> raw = monitor_.drain(qid);
    sub->monitor_id = qid;
    const std::uint64_t seen = sub->fed_raw;
    if (raw.size() < seen) {
      // Defensive: the durable log replays FEWER matches than were routed
      // — only possible if un-fsynced data was lost beyond the single
      // in-flight event recovery guarantees. Realign and carry on.
      sub->fed_raw = raw.size();
      continue;
    }
    std::vector<std::string> events;
    for (std::size_t i = seen; i < raw.size(); ++i) {
      if (st->engine == nullptr) break;
      std::string json = render_sub_event(sub->parsed, raw[i].incident,
                                          st->engine->index());
      if (!json.empty()) events.push_back(std::move(json));
    }
    if (!subs_.enqueue(*sub, std::move(events), raw.size() - seen)) {
      monitor_.remove_query(qid);
    }
  }
}

std::shared_ptr<const QueryService::State> QueryService::state() const {
  std::lock_guard lock(state_mu_);
  return state_;
}

std::size_t QueryService::num_records() const {
  const auto st = state();
  return st->log.has_value() ? st->log->size() : 0;
}

void QueryService::rebuild_state() {
  auto fresh = std::make_shared<State>();
  fresh->version = ++version_seq_;
  if (monitor_.num_records() > 0) {
    fresh->log = monitor_.snapshot();
    fresh->engine =
        std::make_unique<QueryEngine>(*fresh->log, options_.engine);
  }
  std::lock_guard lock(state_mu_);
  state_ = std::move(fresh);
}

RunLimits QueryService::limits_from(const JsonValue& body) const {
  RunLimits limits;
  std::int64_t deadline_ms = options_.default_deadline_ms;
  const JsonValue* d = body.find("deadline_ms");
  if (d != nullptr && !d->is_null()) {
    if (!d->is_number() || d->as_int() < 0) {
      throw Error("\"deadline_ms\" must be a non-negative number");
    }
    deadline_ms = d->as_int();
  }
  // The cap binds even "unlimited" (0) requests: a server with a
  // max_deadline_ms never runs an unbounded query.
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  limits.deadline = std::chrono::milliseconds(deadline_ms);

  std::size_t max_incidents =
      read_size(body, "max_incidents", options_.default_max_incidents);
  if (options_.max_incidents_cap > 0 &&
      (max_incidents == 0 || max_incidents > options_.max_incidents_cap)) {
    max_incidents = options_.max_incidents_cap;
  }
  limits.max_incidents = max_incidents;
  limits.cancel = drain_;
  return limits;
}

void QueryService::bind(Router& router, const HttpServer* server) {
  server_ = server;
  router.add("POST", "/query",
             [this](const HttpRequest& req, RequestContext& ctx) {
               return handle_query(req, ctx);
             });
  router.add("POST", "/batch",
             [this](const HttpRequest& req, RequestContext& ctx) {
               return handle_batch(req, ctx);
             });
  router.add("POST", "/ingest",
             [this](const HttpRequest& req, RequestContext& ctx) {
               return handle_ingest(req, ctx);
             });
  router.add("POST", "/subscribe",
             [this](const HttpRequest& req, RequestContext& ctx) {
               return handle_subscribe(req, ctx);
             });
  router.add_prefix("GET", "/subscribe/",
                    [this](const HttpRequest& req, RequestContext& ctx) {
                      return handle_subscription(req, ctx);
                    });
  router.add_prefix("DELETE", "/subscribe/",
                    [this](const HttpRequest& req, RequestContext& ctx) {
                      return handle_subscription(req, ctx);
                    });
  router.add("GET", "/metrics",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_metrics(req);
             });
  router.add("GET", "/stats",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_stats(req);
             });
  router.add("GET", "/healthz",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_healthz(req);
             });
  router.add("GET", "/version",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_version(req);
             });
  router.add("GET", "/debug/requests",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_debug_requests(req);
             });
  router.add("GET", "/debug/slow",
             [this](const HttpRequest& req, RequestContext&) {
               return handle_debug_slow(req);
             });
}

HttpResponse QueryService::handle_query(const HttpRequest& req,
                                        RequestContext& ctx) {
  const auto t0 = Clock::now();
  mark_spans(ctx);
  JsonValue body;
  std::string query_text;
  RunLimits limits;
  std::size_t render_limit = options_.default_render_limit;
  bool stream_requested = false;
  try {
    body = parse_json(req.body);
    const JsonValue* q = body.find("query");
    if (q == nullptr || !q->is_string()) {
      throw Error("body must be an object with a string \"query\"");
    }
    query_text = q->as_string();
    limits = limits_from(body);
    render_limit = read_size(body, "limit", options_.default_render_limit);
    const JsonValue* sv = body.find("stream");
    if (sv != nullptr && !sv->is_null()) {
      if (!sv->is_bool()) throw Error("\"stream\" must be a boolean");
      stream_requested = sv->as_bool();
    }
  } catch (const std::exception& e) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(400, e.what());
  }

  const auto st = state();
  try {
    // Parse-first, on both the cached and uncached path: the observability
    // layer attributes the request to its canonical pattern key, and
    // run(pattern, where) produces the same result run(text) would (the
    // text overload is parse + this call).
    const auto tq0 = Clock::now();
    Query parsed = Query::parse(query_text);
    const double query_parse_us = us_since(tq0);
    ctx.query = query_text;
    ctx.canonical_key = canonical_key(*parsed.pattern);
    ctx.parse_us = us_since(t0);

    if (st->engine == nullptr) {
      // Empty log: the query was already validated above.
      JsonValue out;
      out.set("query", query_text);
      out.set("instances", 0);
      out.set("total", 0);
      out.set("complete", true);
      out.set("stop_reason", std::string(stop_reason_name(StopReason::kNone)));
      out.set("incidents", JsonArray{});
      ctx.stop_reason = stop_reason_name(StopReason::kNone);
      const auto ts0 = Clock::now();
      if (stream_requested) {
        HttpResponse resp;
        resp.content_type = "application/x-ndjson";
        std::string line = out.dump() + "\n";
        resp.streamer = [line = std::move(line)](ChunkedWriter& w) {
          w.write_chunk(line);
        };
        ctx.serialize_us = us_since(ts0);
        return resp;
      }
      HttpResponse resp = HttpResponse::json(200, out.dump());
      ctx.serialize_us = us_since(ts0);
      return resp;
    }
    const bool cache_on = cache_ != nullptr && cache_->enabled();
    std::shared_ptr<const QueryResult> result;
    bool cache_hit = false;
    if (cache_on) {
      const auto tc0 = Clock::now();
      const std::string key = ResultCache::key(parsed, st->version);
      if (!no_cache_requested(req)) {
        result = cache_->lookup(key, limits);
        cache_hit = result != nullptr;
      }
      ctx.cache_us += us_since(tc0);
      if (result == nullptr) {
        const auto te0 = Clock::now();
        auto fresh = std::make_shared<QueryResult>(
            st->engine->run(parsed.pattern, parsed.where, limits));
        ctx.eval_us = us_since(te0);
        ctx.shards = fresh->shards_used;
        fresh->parse_us = query_parse_us;
        const auto ti0 = Clock::now();
        cache_->insert(key, fresh, limits);
        ctx.cache_us += us_since(ti0);
        result = std::move(fresh);
      }
      ctx.cache = cache_hit ? 1 : 0;
    } else {
      const auto te0 = Clock::now();
      auto fresh = std::make_shared<QueryResult>(
          st->engine->run(parsed.pattern, parsed.where, limits));
      ctx.eval_us = us_since(te0);
      ctx.shards = fresh->shards_used;
      fresh->parse_us = query_parse_us;
      result = std::move(fresh);
    }
    if (stream_requested && result->ok()) {
      const auto ts0 = Clock::now();
      ctx.stop_reason = stop_reason_name(result->stop_reason);
      ctx.plan =
          result->executed != nullptr ? to_text(*result->executed) : "";
      // Same spelling guarantee reecho_pattern_texts gives the buffered
      // path: echo THIS request's text, not the cache populator's.
      std::string pattern_text =
          result->parsed != nullptr ? to_text(*result->parsed) : "";
      std::string optimized_text = ctx.plan;
      if (cache_hit && pattern_text != to_text(*parsed.pattern)) {
        pattern_text = to_text(*parsed.pattern);
        PatternPtr executed = parsed.pattern;
        if (st->engine->options().optimize) {
          executed = optimize(parsed.pattern, st->engine->cost_model(),
                              st->engine->options().optimizer)
                         .pattern;
        }
        optimized_text = to_text(*executed);
      }
      HttpResponse resp;
      resp.content_type = "application/x-ndjson";
      if (cache_on) set_cache_header(resp, cache_hit);
      resp.streamer = [result, query_text, pattern_text, optimized_text,
                       render_limit](ChunkedWriter& w) {
        // One chunk for the header, one per instance group, one summary —
        // a huge incident set never materializes as a single buffer.
        JsonValue head;
        head.set("query", query_text);
        head.set("pattern", pattern_text);
        head.set("optimized", optimized_text);
        head.set("instances", result->incidents.groups().size());
        head.set("total", result->total());
        head.set("complete", result->complete());
        head.set("stop_reason",
                 std::string(stop_reason_name(result->stop_reason)));
        if (!w.write_chunk(head.dump() + "\n")) return;
        std::size_t rendered = 0;
        for (const IncidentSet::Group& g : result->incidents.groups()) {
          if (rendered >= render_limit || w.failed()) break;
          JsonArray incidents;
          for (const Incident& o : g.incidents) {
            if (rendered >= render_limit) break;
            JsonArray positions;
            for (const IsLsn n : o.positions()) {
              positions.emplace_back(static_cast<std::int64_t>(n));
            }
            incidents.emplace_back(std::move(positions));
            ++rendered;
          }
          JsonValue group;
          group.set("wid", static_cast<std::int64_t>(g.wid));
          group.set("incidents", std::move(incidents));
          if (!w.write_chunk(group.dump() + "\n")) return;
        }
        JsonValue tail;
        tail.set("rendered", rendered);
        tail.set("render_truncated", rendered < result->total());
        JsonValue timings;
        timings.set("parse_us", result->parse_us);
        timings.set("optimize_us", result->optimize_us);
        timings.set("eval_us", result->eval_us);
        tail.set("timings", std::move(timings));
        w.write_chunk(tail.dump() + "\n");
      };
      ctx.serialize_us = us_since(ts0);
      return resp;
    }
    // Plan rendering for the slow capture counts as serialization work,
    // and so does tearing down the rendered JSON tree and (when the
    // cache didn't take ownership) the result itself — both scale with
    // the response and would otherwise be an untimed gap in the
    // breakdown.
    const auto ts0 = Clock::now();
    ctx.stop_reason = stop_reason_name(result->stop_reason);
    ctx.plan = result->executed != nullptr ? to_text(*result->executed) : "";
    HttpResponse resp;
    {
      JsonValue out;
      out.set("query", query_text);
      JsonValue rendered = render_result(*result, render_limit);
      if (cache_hit) {
        reecho_pattern_texts(rendered, parsed, *st->engine, *result);
      }
      for (auto& [k, v] : rendered.members()) {
        out.set(k, std::move(v));
      }
      resp = HttpResponse::json(200, out.dump());
    }
    result.reset();
    if (cache_on) set_cache_header(resp, cache_hit);
    ctx.serialize_us = us_since(ts0);
    return resp;
  } catch (const ParseError& e) {
    return HttpResponse::error(400, e.what());
  } catch (const QueryError& e) {
    return HttpResponse::error(400, e.what());
  }
}

namespace {

/// Batch requests land in the access log under a synthetic "query" field:
/// the first texts joined, capped so a 1000-query batch cannot bloat the
/// slow-capture ring.
std::string batch_query_label(const std::vector<std::string>& texts) {
  std::string label;
  for (const std::string& t : texts) {
    if (!label.empty()) label += " ; ";
    if (label.size() + t.size() > 256) {
      label += "... (+" + std::to_string(texts.size()) + " queries)";
      break;
    }
    label += t;
  }
  return label;
}

/// First non-clean stop reason across the batch (the shared guard trips
/// for every slot at once, so "first" is representative).
const char* batch_stop_reason(const std::vector<QueryResult>& results) {
  for (const QueryResult& r : results) {
    if (r.ok() && r.stop_reason != StopReason::kNone) {
      return stop_reason_name(r.stop_reason);
    }
  }
  return stop_reason_name(StopReason::kNone);
}

}  // namespace

HttpResponse QueryService::handle_batch(const HttpRequest& req,
                                        RequestContext& ctx) {
  const auto t0 = Clock::now();
  mark_spans(ctx);
  std::vector<std::string> texts;
  RunLimits limits;
  std::size_t threads = options_.batch_threads;
  std::size_t render_limit = options_.default_render_limit;
  try {
    const JsonValue body = parse_json(req.body);
    const JsonValue* queries = body.find("queries");
    if (queries == nullptr || !queries->is_array() ||
        queries->as_array().empty()) {
      throw Error(
          "body must be an object with a nonempty \"queries\" array");
    }
    for (const JsonValue& q : queries->as_array()) {
      if (!q.is_string()) throw Error("\"queries\" must hold strings");
      texts.push_back(q.as_string());
    }
    limits = limits_from(body);
    threads = std::clamp<std::size_t>(
        read_size(body, "threads", options_.batch_threads), 1, 64);
    render_limit = read_size(body, "limit", options_.default_render_limit);
  } catch (const std::exception& e) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(400, e.what());
  }
  ctx.parse_us = us_since(t0);
  ctx.query = batch_query_label(texts);

  const auto st = state();
  JsonValue out;
  JsonArray results;
  if (st->engine == nullptr) {
    // Empty log: every query parses (for its error slot) over no data.
    for (const std::string& text : texts) {
      JsonValue slot;
      try {
        Query::parse(text);
        slot.set("total", 0);
        slot.set("complete", true);
        slot.set("incidents", JsonArray{});
      } catch (const std::exception& e) {
        slot.set("error", std::string(e.what()));
      }
      results.emplace_back(std::move(slot));
    }
    out.set("results", std::move(results));
    return HttpResponse::json(200, out.dump());
  }

  const bool cache_on = cache_ != nullptr && cache_->enabled();
  if (!cache_on) {
    const auto te0 = Clock::now();
    const BatchResult batch =
        st->engine->run_batch(texts, threads, /*use_cache=*/true, limits);
    ctx.eval_us = us_since(te0);
    ctx.shards = st->engine->shards();
    ctx.stop_reason = batch_stop_reason(batch.results);
    const auto ts0 = Clock::now();
    for (const QueryResult& r : batch.results) {
      results.emplace_back(render_result(r, render_limit));
    }
    out.set("results", std::move(results));

    JsonValue stats;
    stats.set("queries", batch.stats.plan.num_queries);
    stats.set("total_nodes", batch.stats.plan.total_nodes);
    stats.set("distinct_slots", batch.stats.plan.distinct_slots);
    stats.set("shared_nodes", batch.stats.plan.shared_nodes());
    stats.set("cache_hits", static_cast<std::int64_t>(batch.cache_hits()));
    stats.set("cache_misses",
              static_cast<std::int64_t>(batch.cache_misses()));
    stats.set("threads_used", batch.stats.threads_used);
    stats.set("eval_us", batch.eval_us);
    out.set("stats", std::move(stats));
    HttpResponse resp = HttpResponse::json(200, out.dump());
    ctx.serialize_us = us_since(ts0);
    return resp;
  }

  // Cached path: serve each slot from the cache when possible; the misses
  // still go through ONE run_batch call so intra-batch canonical sharing
  // is preserved among them. Slot rendering is identical to the uncached
  // path (render_result), so answers are bit-identical either way; only
  // the "stats" block shrinks to describe the pass that actually ran.
  const bool bypass = no_cache_requested(req);
  std::vector<std::shared_ptr<const QueryResult>> slots(texts.size());
  std::vector<std::string> keys(texts.size());
  std::vector<std::optional<Query>> hit_query(texts.size());
  std::vector<Query> miss_queries;
  std::vector<std::size_t> miss_index;
  std::size_t served_hits = 0;
  const auto tc0 = Clock::now();
  for (std::size_t i = 0; i < texts.size(); ++i) {
    try {
      Query q = Query::parse(texts[i]);
      keys[i] = ResultCache::key(q, st->version);
      if (!bypass) slots[i] = cache_->lookup(keys[i], limits);
      if (slots[i] != nullptr) {
        ++served_hits;
        hit_query[i] = std::move(q);
      } else {
        miss_index.push_back(i);
        miss_queries.push_back(std::move(q));
      }
    } catch (const std::exception& e) {
      // Same error-slot isolation (and message) the text overload of
      // run_batch produces; parse failures are never cached.
      auto err = std::make_shared<QueryResult>();
      err->error = e.what();
      slots[i] = std::move(err);
    }
  }
  ctx.cache_us += us_since(tc0);

  BatchResult batch;
  if (!miss_queries.empty()) {
    const auto te0 = Clock::now();
    batch = st->engine->run_batch(std::span<const Query>(miss_queries),
                                  threads, /*use_cache=*/true, limits);
    ctx.eval_us = us_since(te0);
    ctx.shards = st->engine->shards();
    const auto ti0 = Clock::now();
    for (std::size_t j = 0; j < miss_index.size(); ++j) {
      auto r = std::make_shared<QueryResult>(std::move(batch.results[j]));
      cache_->insert(keys[miss_index[j]], r, limits);
      slots[miss_index[j]] = std::move(r);
    }
    ctx.cache_us += us_since(ti0);
  }
  ctx.cache = served_hits == texts.size() ? 1 : 0;
  for (const auto& slot : slots) {
    if (slot != nullptr && slot->ok() &&
        slot->stop_reason != StopReason::kNone) {
      ctx.stop_reason = stop_reason_name(slot->stop_reason);
      break;
    }
  }
  if (ctx.stop_reason.empty()) {
    ctx.stop_reason = stop_reason_name(StopReason::kNone);
  }

  const auto ts0 = Clock::now();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    JsonValue rendered = render_result(*slots[i], render_limit);
    if (hit_query[i].has_value()) {
      reecho_pattern_texts(rendered, *hit_query[i], *st->engine, *slots[i]);
    }
    results.emplace_back(std::move(rendered));
  }
  out.set("results", std::move(results));

  JsonValue stats;
  stats.set("queries", batch.stats.plan.num_queries);
  stats.set("total_nodes", batch.stats.plan.total_nodes);
  stats.set("distinct_slots", batch.stats.plan.distinct_slots);
  stats.set("shared_nodes", batch.stats.plan.shared_nodes());
  stats.set("cache_hits", static_cast<std::int64_t>(batch.cache_hits()));
  stats.set("cache_misses",
            static_cast<std::int64_t>(batch.cache_misses()));
  stats.set("threads_used", batch.stats.threads_used);
  stats.set("eval_us", batch.eval_us);
  stats.set("result_cache_hits", served_hits);
  stats.set("result_cache_misses", miss_index.size());
  out.set("stats", std::move(stats));
  HttpResponse resp = HttpResponse::json(200, out.dump());
  set_cache_header(resp, served_hits == texts.size());
  ctx.serialize_us = us_since(ts0);
  return resp;
}

HttpResponse QueryService::handle_ingest(const HttpRequest& req,
                                         RequestContext& ctx) {
  const auto t0 = Clock::now();
  mark_spans(ctx);
  JsonValue body;
  try {
    body = parse_json(req.body);
    const JsonValue* events = body.find("events");
    if (events == nullptr || !events->is_array()) {
      throw Error("body must be an object with an \"events\" array");
    }
  } catch (const std::exception& e) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(400, e.what());
  }
  ctx.parse_us = us_since(t0);
  const JsonArray& events = body.find("events")->as_array();
  const auto te0 = Clock::now();

  std::lock_guard lock(ingest_mu_);
  if (health_ != nullptr && !health_->writable()) {
    // Degraded mode: reads keep serving the last good snapshot; writes
    // wait for the background recovery to reopen the store.
    const HealthStats hs = health_->stats();
    HttpResponse resp = HttpResponse::error(
        503, "ingest unavailable: store " + std::string(to_string(hs.state)) +
                 (hs.last_error.empty() ? "" : " (" + hs.last_error + ")"));
    resp.extra_headers.emplace_back(
        "retry-after", std::to_string(health_->retry_after_seconds()));
    return resp;
  }
  if (!ingest_enabled_) {
    return HttpResponse::error(409,
                               "ingest disabled: " + ingest_disabled_reason());
  }

  last_bad_.clear();
  last_bad_dropped_ = 0;
  std::size_t applied = 0;
  JsonArray new_wids;
  std::string abort_error;
  int abort_status = 0;
  // Matches drained after each DURABLY applied event; routed to standing
  // subscriptions once the new snapshot is published. Matches of an event
  // whose store mirror failed are deliberately left queued — the degraded
  // gate blocks ingest until recovery rebuilds the monitor (wiping them),
  // so a non-durable incident can never be delivered.
  std::vector<LogMonitor::Match> routed;
  const auto collect = [&] {
    std::vector<LogMonitor::Match> batch = monitor_.drain();
    routed.insert(routed.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  };

  for (const JsonValue& ev : events) {
    try {
      if (!ev.is_object()) throw Error("each event must be an object");
      const JsonValue* op = ev.find("op");
      if (op == nullptr || !op->is_string()) {
        throw Error("each event needs a string \"op\"");
      }
      const std::string& kind = op->as_string();
      const std::size_t bad_before = monitor_.num_bad_events();

      if (kind == "begin") {
        const Wid wid = monitor_.begin_instance();
        if (store_.has_value()) {
          const Wid store_wid = store_->begin_instance();
          if (store_wid != wid) {
            // Recoverable: rebuilding the monitor from the store during
            // recovery realigns the wid sequences.
            throw IoError("monitor/store wid divergence (" +
                          std::to_string(wid) + " vs " +
                          std::to_string(store_wid) + ")");
          }
        }
        new_wids.emplace_back(static_cast<std::int64_t>(wid));
        ++applied;
        collect();
        continue;
      }

      const JsonValue* wid_v = ev.find("wid");
      if (wid_v == nullptr || !wid_v->is_number() || wid_v->as_int() <= 0) {
        throw Error("\"" + kind + "\" event needs a positive \"wid\"");
      }
      const Wid wid = static_cast<Wid>(wid_v->as_int());

      if (kind == "record") {
        const JsonValue* act = ev.find("activity");
        if (act == nullptr || !act->is_string()) {
          throw Error("\"record\" event needs a string \"activity\"");
        }
        const NamedAttrs in = to_named_attrs(ev.find("in"));
        const NamedAttrs out = to_named_attrs(ev.find("out"));
        monitor_.record(wid, act->as_string(), in, out);
        if (monitor_.num_bad_events() == bad_before) {
          if (store_.has_value()) store_->record(wid, act->as_string(), in, out);
          ++applied;
          collect();
        }
      } else if (kind == "end") {
        monitor_.end_instance(wid);
        if (monitor_.num_bad_events() == bad_before) {
          if (store_.has_value()) store_->end_instance(wid);
          ++applied;
          collect();
        }
      } else {
        throw Error("unknown event op \"" + kind + "\"");
      }
    } catch (const IoError& e) {
      // The durable mirror failed: the monitor and the store no longer
      // agree, so stop accepting writes rather than silently diverging.
      // With a health monitor this is the degraded-mode trigger — reads
      // keep working, recovery probes start, and the client gets a
      // retryable 503; without one (store-less constructor failure modes)
      // it stays the permanent 500 it always was.
      abort_error = e.what();
      if (health_ != nullptr) {
        health_->degrade(std::string("store append failed: ") + e.what());
        // Pause standing-query delivery (events stay queued and acked
        // cursors stay put); recovery reattaches and resumes.
        subs_.set_paused(true);
        abort_status = 503;
      } else {
        set_ingest_disabled(std::string("store append failed: ") + e.what());
        abort_status = 500;
      }
      break;
    } catch (const std::exception& e) {
      // Bad event under kReject, or a malformed event object: abort the
      // rest of the request; prior events stay applied.
      abort_error = e.what();
      abort_status = 400;
      break;
    }
  }

  if (applied > 0) {
    const std::uint64_t old_version = version_seq_;
    rebuild_state();
    route_matches(routed, state(), old_version);
  }
  ctx.eval_us = us_since(te0);  // monitor+store appends + snapshot rebuild

  const auto ts0 = Clock::now();
  JsonValue out;
  out.set("applied", applied);
  out.set("wids", std::move(new_wids));
  JsonArray bad;
  for (const BadEvent& e : last_bad_) {
    JsonValue b;
    b.set("wid", static_cast<std::int64_t>(e.wid));
    b.set("activity", e.activity);
    b.set("reason", e.reason);
    bad.emplace_back(std::move(b));
  }
  out.set("bad_events", std::move(bad));
  out.set("bad_events_dropped", last_bad_dropped_);
  out.set("records", monitor_.num_records());
  if (abort_status != 0) {
    out.set("error", abort_error);
    HttpResponse resp = HttpResponse::json(abort_status, out.dump());
    if (abort_status == 503 && health_ != nullptr) {
      resp.extra_headers.emplace_back(
          "retry-after", std::to_string(health_->retry_after_seconds()));
    }
    ctx.serialize_us = us_since(ts0);
    return resp;
  }
  HttpResponse resp = HttpResponse::json(200, out.dump());
  ctx.serialize_us = us_since(ts0);
  return resp;
}

HttpResponse QueryService::handle_subscribe(const HttpRequest& req,
                                            RequestContext& ctx) {
  const auto t0 = Clock::now();
  mark_spans(ctx);
  std::string query_text;
  RunLimits limits;
  try {
    const JsonValue body = parse_json(req.body);
    const JsonValue* q = body.find("query");
    if (q == nullptr || !q->is_string()) {
      throw Error("body must be an object with a string \"query\"");
    }
    query_text = q->as_string();
    limits = limits_from(body);
  } catch (const std::exception& e) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(400, e.what());
  }
  Query parsed;
  try {
    parsed = Query::parse(query_text);
  } catch (const std::exception& e) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(400, e.what());
  }
  ctx.query = query_text;
  ctx.canonical_key = canonical_key(*parsed.pattern);
  ctx.parse_us = us_since(t0);

  std::lock_guard lock(ingest_mu_);
  if (health_ != nullptr && !health_->writable()) {
    // Degraded: the monitor may hold the one event whose durable mirror
    // failed. Backfilling from it would misalign fed_raw against the
    // durable replay recovery performs — register after recovery.
    HttpResponse resp = HttpResponse::error(
        503, "subscribe unavailable: store is not writable");
    resp.extra_headers.emplace_back(
        "retry-after", std::to_string(health_->retry_after_seconds()));
    return resp;
  }
  if (!ingest_enabled_) {
    return HttpResponse::error(
        409, "subscribe disabled: " + ingest_disabled_reason());
  }
  if (subs_.size() >= subs_.options().max_subscriptions) {
    return HttpResponse::error(503, "subscription capacity reached");
  }

  // Registration replays retained history through the fresh query under
  // the request's own budget — a standing query starts with the exact
  // match set a batch /query would report right now.
  const auto te0 = Clock::now();
  EvalGuard guard(limits.deadline, limits.max_incidents, limits.cancel);
  std::size_t qid = 0;
  try {
    qid = monitor_.add_query(parsed.pattern, &guard);
  } catch (const Error& e) {
    // Backfill tripped the budget; the monitor rolled the query back.
    return HttpResponse::error(503, e.what());
  }
  std::vector<LogMonitor::Match> raw = monitor_.drain(qid);
  ctx.eval_us = us_since(te0);

  const auto st = state();
  std::vector<std::string> events;
  events.reserve(raw.size());
  if (st->engine != nullptr) {
    for (const LogMonitor::Match& m : raw) {
      std::string json =
          render_sub_event(parsed, m.incident, st->engine->index());
      if (!json.empty()) events.push_back(std::move(json));
    }
  }
  const std::size_t matched = events.size();
  auto sub =
      subs_.create(query_text, parsed, canonical_key(*parsed.pattern), qid,
                   raw.size(), std::move(events));
  if (sub == nullptr) {
    monitor_.remove_query(qid);
    return HttpResponse::error(503, "subscription capacity reached");
  }

  const auto ts0 = Clock::now();
  JsonValue out;
  out.set("id", sub->id);
  out.set("query", query_text);
  out.set("matched", matched);
  out.set("next_after", 0);
  HttpResponse resp = HttpResponse::json(201, out.dump());
  ctx.serialize_us = us_since(ts0);
  return resp;
}

namespace {

/// Strict non-negative decimal; false on junk or overflow.
bool parse_nonneg(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  std::int64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (INT64_MAX - (c - '0')) / 10) return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

}  // namespace

HttpResponse QueryService::handle_subscription(const HttpRequest& req,
                                               RequestContext& ctx) {
  const auto t0 = Clock::now();
  mark_spans(ctx);
  constexpr std::string_view kPrefix = "/subscribe/";
  const std::string id = req.target.substr(kPrefix.size());
  if (id.empty() || id.find('/') != std::string::npos) {
    ctx.parse_us = us_since(t0);
    return HttpResponse::error(404, "no such subscription");
  }

  if (req.method == "DELETE") {
    ctx.parse_us = us_since(t0);
    std::lock_guard lock(ingest_mu_);
    const auto sub = subs_.find(id);
    if (sub == nullptr) {
      return HttpResponse::error(404, "no such subscription: " + id);
    }
    monitor_.remove_query(sub->monitor_id);
    subs_.close(id, "unsubscribed");
    JsonValue out;
    out.set("id", id);
    out.set("closed", true);
    return HttpResponse::json(200, out.dump());
  }

  // GET: long-poll by default, chunked stream with ?stream=1. ?after=N
  // acknowledges (releases) events with seq <= N first — the consumer's
  // exactly-once cursor.
  std::uint64_t after = 0;
  std::int64_t wait_ms = 0;
  std::size_t max_events = 0;
  bool stream = false;
  std::int64_t heartbeat_ms = options_.subscribe_heartbeat_ms;
  {
    std::int64_t v = 0;
    if (const auto p = req.query_param("after")) {
      if (!parse_nonneg(*p, v)) {
        return HttpResponse::error(400, "\"after\" must be a non-negative "
                                        "integer");
      }
      after = static_cast<std::uint64_t>(v);
    }
    if (const auto p = req.query_param("wait_ms")) {
      if (!parse_nonneg(*p, v)) {
        return HttpResponse::error(400, "\"wait_ms\" must be a non-negative "
                                        "integer");
      }
      wait_ms = v;
    }
    if (const auto p = req.query_param("max")) {
      if (!parse_nonneg(*p, v)) {
        return HttpResponse::error(400,
                                   "\"max\" must be a non-negative integer");
      }
      max_events = static_cast<std::size_t>(v);
    }
    if (const auto p = req.query_param("heartbeat_ms")) {
      if (!parse_nonneg(*p, v)) {
        return HttpResponse::error(400, "\"heartbeat_ms\" must be a "
                                        "non-negative integer");
      }
      heartbeat_ms = v;
    }
    if (const auto p = req.query_param("stream")) {
      stream = *p != "0" && *p != "false";
    }
  }
  wait_ms = std::clamp<std::int64_t>(wait_ms, 0,
                                     options_.subscribe_wait_cap_ms);
  ctx.parse_us = us_since(t0);

  if (stream) {
    if (subs_.find(id) == nullptr) {
      return HttpResponse::error(404, "no such subscription: " + id);
    }
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "application/x-ndjson";
    const std::int64_t beat = heartbeat_ms;
    resp.streamer = [this, id, after, beat](ChunkedWriter& w) {
      const auto on_event = [&](const SubEvent& e) {
        return w.write_chunk("{\"type\":\"incident\",\"seq\":" +
                             std::to_string(e.seq) + "," + e.json + "}\n");
      };
      const auto on_heartbeat = [&] {
        return w.write_chunk("{\"type\":\"heartbeat\"}\n");
      };
      const auto interrupted = [&] {
        return delivery_interrupted() || w.failed();
      };
      const std::string reason =
          subs_.stream(id, after, beat, on_event, on_heartbeat, interrupted);
      w.write_chunk("{\"type\":\"end\",\"reason\":\"" + reason + "\"}\n");
    };
    return resp;
  }

  const SubPollResult res =
      subs_.poll(id, after, wait_ms, max_events,
                 [this] { return delivery_interrupted(); });
  if (!res.found) {
    return HttpResponse::error(404, "no such subscription: " + id);
  }
  const auto ts0 = Clock::now();
  // Events carry pre-rendered JSON bodies; assemble the response directly.
  std::string body = "{\"id\":\"" + id + "\",\"events\":[";
  bool first = true;
  for (const SubEvent& e : res.events) {
    if (!first) body += ',';
    first = false;
    body += "{\"seq\":" + std::to_string(e.seq) + "," + e.json + "}";
  }
  body += "],\"next_after\":" + std::to_string(res.next_after);
  body += ",\"pending\":" + std::to_string(res.pending_left);
  body += std::string(",\"paused\":") + (res.paused ? "true" : "false");
  body += std::string(",\"closed\":") + (res.closed ? "true" : "false");
  if (res.closed) {
    body += ",\"reason\":\"" +
            (res.close_reason.empty() ? std::string("closed")
                                      : res.close_reason) +
            "\"";
  }
  body += "}";
  HttpResponse resp = HttpResponse::json(200, std::move(body));
  ctx.serialize_us = us_since(ts0);
  return resp;
}

HttpResponse QueryService::handle_metrics(const HttpRequest&) const {
  obs::Telemetry* t = obs::telemetry();
  if (t == nullptr) {
    return HttpResponse::error(503, "telemetry is not installed");
  }
  std::string text = to_prometheus_text(t->metrics.snapshot());
  if (observer_ != nullptr) {
    // Fold in the request observer's labeled per-endpoint and
    // per-canonical-key latency histograms.
    text += observer_->prometheus_text();
  }
  HttpResponse resp = HttpResponse::text(200, std::move(text));
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return resp;
}

HttpResponse QueryService::handle_stats(const HttpRequest&) const {
  JsonValue out;
  const auto st = state();
  out.set("records", st->log.has_value() ? st->log->size() : 0);
  out.set("instances",
          st->log.has_value() ? st->log->wids().size() : 0);
  out.set("ingest_enabled", ingest_enabled_.load());
  out.set("ingest_disabled_reason", ingest_disabled_reason());
  out.set("snapshot_version", static_cast<std::int64_t>(st->version));
  {
    const SubscribeStats ss = subs_.stats();
    JsonValue s;
    s.set("active", ss.active);
    s.set("streams", ss.streams);
    s.set("pending_events", ss.pending);
    s.set("paused", ss.paused);
    s.set("created", static_cast<std::int64_t>(ss.created_total));
    s.set("delivered", static_cast<std::int64_t>(ss.delivered_total));
    s.set("acked", static_cast<std::int64_t>(ss.acked_total));
    s.set("heartbeats", static_cast<std::int64_t>(ss.heartbeats_total));
    s.set("overflow_dropped",
          static_cast<std::int64_t>(ss.overflow_dropped));
    s.set("cache_repairs",
          static_cast<std::int64_t>(cache_repairs_.load()));
    out.set("subscriptions", std::move(s));
  }
  {
    // Sharded evaluation: the configured request (0 = hw concurrency),
    // what it resolved to against this snapshot, and the scatter tallies.
    JsonValue sh;
    sh.set("configured",
           static_cast<std::int64_t>(options_.engine.shards));
    sh.set("effective",
           static_cast<std::int64_t>(
               st->engine != nullptr ? st->engine->shards() : 0));
    sh.set("pool_workers",
           static_cast<std::int64_t>(
               st->engine != nullptr && st->engine->shard_pool() != nullptr
                   ? st->engine->shard_pool()->workers()
                   : 0));
    WFLOG_TELEMETRY(t) {
      sh.set("evals", static_cast<std::int64_t>(t->shard_evals_total->value()));
      sh.set("tasks", static_cast<std::int64_t>(t->shard_tasks_total->value()));
      sh.set("cancelled",
             static_cast<std::int64_t>(t->shard_cancelled_total->value()));
    }
    out.set("shards", std::move(sh));
  }
  if (cache_ != nullptr) {
    const CacheStats cs = cache_->stats();
    JsonValue c;
    c.set("enabled", cache_->enabled());
    c.set("hits", static_cast<std::int64_t>(cs.hits));
    c.set("misses", static_cast<std::int64_t>(cs.misses));
    c.set("insertions", static_cast<std::int64_t>(cs.insertions));
    c.set("evictions", static_cast<std::int64_t>(cs.evictions));
    c.set("limit_rejects", static_cast<std::int64_t>(cs.limit_rejects));
    c.set("entries", cs.entries);
    c.set("bytes", cs.bytes);
    c.set("max_bytes", cs.max_bytes);
    out.set("cache", std::move(c));
  } else {
    out.set("cache", JsonValue(nullptr));
  }
  if (store_.has_value()) {
    // The store's segment list and zone maps grow during ingest; reading
    // them unlocked races with flush_pending_block's push_backs, so the
    // whole store snapshot sits under ingest_mu_. A stats call may wait
    // behind an in-flight batch, never behind an idle server.
    std::lock_guard lock(ingest_mu_);
    JsonValue s;
    s.set("directory", store_->directory().string());
    s.set("records", store_->num_records());
    s.set("segments", store_->num_segments());
    const LogStore::StorageStats ss = store_->storage_stats();
    JsonValue storage;
    storage.set("segments_v1", static_cast<std::int64_t>(ss.segments_v1));
    storage.set("segments_v2", static_cast<std::int64_t>(ss.segments_v2));
    storage.set("sealed_blocks",
                static_cast<std::int64_t>(ss.sealed_blocks));
    storage.set("compressed_payload_bytes",
                static_cast<std::int64_t>(ss.compressed_payload_bytes));
    storage.set("uncompressed_payload_bytes",
                static_cast<std::int64_t>(ss.uncompressed_payload_bytes));
    storage.set("blocks_read", static_cast<std::int64_t>(ss.blocks_read));
    storage.set("blocks_skipped",
                static_cast<std::int64_t>(ss.blocks_skipped));
    s.set("storage", std::move(storage));
    out.set("store", std::move(s));
  } else {
    out.set("store", JsonValue(nullptr));
  }
  if (health_ != nullptr) {
    const HealthStats hs = health_->stats();
    JsonValue h;
    h.set("state", to_string(hs.state));
    h.set("writable", health_->writable());
    h.set("transitions", static_cast<std::int64_t>(hs.transitions));
    h.set("degradations", static_cast<std::int64_t>(hs.degradations));
    h.set("recovery_attempts", static_cast<std::int64_t>(hs.attempts));
    h.set("recoveries", static_cast<std::int64_t>(hs.recoveries));
    h.set("gave_up", hs.gave_up);
    h.set("last_error", hs.last_error);
    out.set("health", std::move(h));
  } else {
    out.set("health", JsonValue(nullptr));
  }
  if (server_ != nullptr) {
    const ServerStats stats = server_->stats();
    JsonValue s;
    s.set("accepted", static_cast<std::int64_t>(stats.accepted));
    s.set("served", static_cast<std::int64_t>(stats.served));
    s.set("rejected", static_cast<std::int64_t>(stats.rejected));
    s.set("bad_requests", static_cast<std::int64_t>(stats.bad_requests));
    s.set("dropped_responses",
          static_cast<std::int64_t>(stats.dropped_responses));
    s.set("queue_depth", static_cast<std::int64_t>(stats.queue_depth));
    s.set("lane_served", static_cast<std::int64_t>(stats.lane_served));
    s.set("draining", server_->draining());
    out.set("server", std::move(s));
  }
  out.set("observability",
          observer_ != nullptr ? observer_->stats_json() : JsonValue(nullptr));
  return HttpResponse::json(200, out.dump());
}

HttpResponse QueryService::handle_healthz(const HttpRequest& req) const {
  const HealthState hstate =
      health_ != nullptr ? health_->state() : HealthState::kHealthy;
  // Plain fast path for load-balancer probes: always 200 (the process is
  // alive and still answering reads), body names the state so a plain
  // probe sees degradation too. Readiness detail is opt-in via Accept.
  if (req.header("accept").find("application/json") == std::string_view::npos) {
    return HttpResponse::text(200, hstate == HealthState::kHealthy
                                       ? "ok\n"
                                       : std::string(to_string(hstate)) + "\n");
  }
  const auto st = state();
  const bool draining = server_ != nullptr && server_->draining();
  JsonValue out;
  out.set("status", hstate == HealthState::kHealthy ? "ok"
                                                    : to_string(hstate));
  out.set("ready", !draining);
  out.set("draining", draining);
  out.set("snapshot_version", static_cast<std::int64_t>(st->version));
  out.set("records", st->log.has_value() ? st->log->size() : 0);
  out.set("queue_depth",
          server_ != nullptr
              ? JsonValue(static_cast<std::int64_t>(
                    server_->stats().queue_depth))
              : JsonValue(nullptr));
  out.set("ingest_enabled", ingest_enabled_.load());
  if (health_ != nullptr) {
    const HealthStats hs = health_->stats();
    JsonValue h;
    h.set("state", to_string(hs.state));
    h.set("writable", health_->writable());
    h.set("transitions", static_cast<std::int64_t>(hs.transitions));
    h.set("degradations", static_cast<std::int64_t>(hs.degradations));
    h.set("recovery_attempts", static_cast<std::int64_t>(hs.attempts));
    h.set("recoveries", static_cast<std::int64_t>(hs.recoveries));
    h.set("gave_up", hs.gave_up);
    h.set("last_error", hs.last_error);
    h.set("next_backoff_ms",
          static_cast<std::int64_t>(hs.next_backoff.count()));
    out.set("health", std::move(h));
  } else {
    out.set("health", JsonValue(nullptr));
  }
  return HttpResponse::json(200, out.dump());
}

HttpResponse QueryService::handle_version(const HttpRequest&) const {
  JsonValue out;
  out.set("server", "wfqd");
  out.set("version", WFLOG_VERSION_STRING);
  out.set("obs_enabled", WFLOG_OBS_ENABLED != 0);
#if defined(__clang__)
  out.set("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  out.set("compiler", "gcc " __VERSION__);
#else
  out.set("compiler", "unknown");
#endif
  out.set("cxx_standard", static_cast<std::int64_t>(__cplusplus));
  return HttpResponse::json(200, out.dump());
}

HttpResponse QueryService::handle_debug_requests(const HttpRequest&) const {
  if (observer_ == nullptr) {
    return HttpResponse::error(
        404, "request observability is not enabled on this server");
  }
  return HttpResponse::json(200, observer_->requests_json().dump());
}

HttpResponse QueryService::handle_debug_slow(const HttpRequest&) const {
  if (observer_ == nullptr) {
    return HttpResponse::error(
        404, "request observability is not enabled on this server");
  }
  return HttpResponse::json(200, observer_->slow_json().dump());
}

}  // namespace wflog::server
