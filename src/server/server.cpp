#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "obs/telemetry.h"

namespace wflog::server {
namespace {

using Clock = std::chrono::steady_clock;

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Closes a rejected/finished connection without racing the client: half-
/// close our side, briefly drain whatever the client already sent (so the
/// kernel does not RST our in-flight response away), then close.
void close_gently(SocketIo& io, int fd) noexcept {
  io.shutdown(fd, SHUT_WR);
  std::string sink;
  for (int i = 0; i < 5; ++i) {
    if (poll_readable(io, fd, 10) != 1) break;
    if (recv_some(io, fd, sink) <= 0) break;
    if (sink.size() > 64 * 1024) break;  // don't sink forever
    sink.clear();
  }
  io.close(fd);
}

/// Client-supplied X-Request-Id values reach the access log and the
/// /debug endpoints verbatim, so constrain them: printable ASCII minus
/// space, capped at 64 chars (no log injection, no unbounded ids).
std::string sanitize_request_id(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (out.size() >= 64) break;
    const unsigned char u = static_cast<unsigned char>(c);
    if (u > 0x20 && u < 0x7f) out += c;
  }
  return out;
}

RequestRecord make_record(const RequestContext& ctx, const HttpRequest* req,
                          int status, std::size_t bytes, bool dropped) {
  RequestRecord rec;
  rec.seq = ctx.seq;
  rec.id = ctx.id;
  if (req != nullptr) {
    rec.method = req->method;
    rec.target = req->target;
  }
  rec.status = status;
  rec.bytes = bytes;
  rec.dropped = dropped;
  rec.queue_us = ctx.queue_us;
  rec.parse_us = ctx.parse_us;
  rec.cache_us = ctx.cache_us;
  rec.eval_us = ctx.eval_us;
  rec.serialize_us = ctx.serialize_us;
  rec.wall_us = ctx.wall_us;
  rec.cache = ctx.cache;
  rec.shards = ctx.shards;
  rec.canonical_key = ctx.canonical_key;
  rec.stop_reason = ctx.stop_reason;
  return rec;
}

}  // namespace

// ----- Router --------------------------------------------------------------

void Router::add(std::string method, std::string path, Handler handler) {
  routes_.push_back(Route{std::move(method), std::move(path),
                          std::move(handler), /*prefix=*/false});
}

void Router::add_prefix(std::string method, std::string prefix,
                        Handler handler) {
  routes_.push_back(Route{std::move(method), std::move(prefix),
                          std::move(handler), /*prefix=*/true});
}

HttpResponse Router::dispatch(const HttpRequest& req,
                              RequestContext& ctx) const {
  bool path_seen = false;
  for (const Route& r : routes_) {
    if (r.prefix || r.path != req.target) continue;
    path_seen = true;
    if (r.method == req.method) return r.handler(req, ctx);
  }
  for (const Route& r : routes_) {
    if (!r.prefix || req.target.rfind(r.path, 0) != 0) continue;
    path_seen = true;
    if (r.method == req.method) return r.handler(req, ctx);
  }
  if (path_seen) {
    return HttpResponse::error(405, "method " + req.method +
                                        " not allowed on " + req.target);
  }
  return HttpResponse::error(404, "no such endpoint: " + req.target);
}

// ----- HttpServer ----------------------------------------------------------

HttpServer::HttpServer(Router router, ServerOptions options)
    : router_(std::move(router)), options_(std::move(options)) {
  options_.threads = std::max<std::size_t>(options_.threads, 1);
  options_.queue_capacity = std::max<std::size_t>(options_.queue_capacity, 1);
  queue_ = std::make_unique<BoundedQueue<Conn>>(options_.queue_capacity);
  if (options_.lane_capacity > 0) {
    lane_queue_ = std::make_unique<BoundedQueue<Conn>>(options_.lane_capacity);
  }
}

HttpServer::~HttpServer() {
  if (started_ && !joined_) {
    request_shutdown();
    wait();
  }
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void HttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close_fd(listen_fd_);
    throw IoError("invalid bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw IoError("bind to " + options_.bind_address + ":" +
                  std::to_string(options_.port) + " failed: " + why);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw IoError("listen failed: " + why);
  }

  // Resolve --port 0 (ephemeral) to the port the OS actually picked, so
  // tests and scripts can always run collision-free.
  ::socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<::sockaddr*>(&addr),
                    &len) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw IoError("getsockname failed: " + why);
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw IoError("pipe failed: " + why);
  }

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (lane_queue_ != nullptr) {
    lane_thread_ = std::thread([this] { lane_loop(); });
  }
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::request_shutdown() noexcept {
  // Signal-handler safe: one relaxed store + one pipe write, nothing else.
  draining_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ::ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void HttpServer::wait() {
  if (!started_ || joined_) return;
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (lane_thread_.joinable()) lane_thread_.join();
  {
    std::lock_guard lock(drain_mu_);
    workers_done_ = true;
  }
  drain_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  joined_ = true;
}

void HttpServer::shutdown() {
  request_shutdown();
  wait();
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.dropped_responses = dropped_.load(std::memory_order_relaxed);
  s.queue_depth = queue_->size();
  s.lane_served = lane_served_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::accept_loop() {
  while (!draining()) {
    ::pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown wake
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = io().accept(listen_fd_);
    if (fd < 0) continue;  // transient (EINTR/EMFILE/injected): keep serving
    accepted_.fetch_add(1, std::memory_order_relaxed);

    Conn conn;
    conn.fd = fd;
    conn.last_active = Clock::now();
    conn.enqueued = conn.last_active;
    if (queue_->try_push(std::move(conn))) continue;

    // Main queue full. Liveness probes and metric scrapes must still
    // answer, so overflow connections fall to the reserved lane — its
    // worker serves only /healthz and /metrics and answers everything
    // else with the 503 the connection would have gotten here.
    Conn overflow;
    overflow.fd = fd;
    overflow.last_active = Clock::now();
    overflow.enqueued = overflow.last_active;
    overflow.lane = true;
    if (lane_queue_ != nullptr && lane_queue_->try_push(std::move(overflow))) {
      continue;
    }

    // Lane full too (or disabled): shed at the door with an explicit
    // retry hint rather than queuing unboundedly.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    WFLOG_TELEMETRY(t) {
      t->metrics
          .counter("wflog_http_rejected_total",
                   "Connections shed with 503 (request queue full)")
          ->inc();
    }
    HttpResponse resp =
        HttpResponse::error(503, "server overloaded, try again");
    resp.extra_headers.emplace_back("retry-after", "1");
    send_all(io(), fd, serialize_response(resp, false));
    close_gently(io(), fd);
  }

  // Shutdown: refuse new connections, close what never got a worker, and
  // give in-flight requests their grace period.
  close_fd(listen_fd_);
  queue_->close();
  for (Conn& conn : queue_->drain()) io().close(conn.fd);
  if (lane_queue_ != nullptr) {
    lane_queue_->close();
    for (Conn& conn : lane_queue_->drain()) io().close(conn.fd);
  }

  std::unique_lock lock(drain_mu_);
  const bool drained = drain_cv_.wait_for(
      lock, std::chrono::milliseconds(options_.drain_timeout_ms),
      [&] { return workers_done_; });
  if (!drained && options_.drain_cancel != nullptr) {
    // Grace period expired: cooperatively cancel in-flight evaluations.
    // Workers still write out the (partial) responses before exiting.
    options_.drain_cancel->store(true);
  }
}

void HttpServer::worker_loop() {
  while (std::optional<Conn> item = queue_->pop()) {
    Conn conn = std::move(*item);
    const double queue_us =
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  conn.enqueued)
            .count();
    if (draining() && conn.buf.empty()) {
      // Admitted but never started; during drain just let it go.
      io().close(conn.fd);
      continue;
    }
    if (serve_one(conn, queue_us)) {
      const int fd = conn.fd;
      conn.enqueued = Clock::now();
      if (!queue_->try_push(std::move(conn))) io().close(fd);
    } else {
      close_gently(io(), conn.fd);
    }
  }
}

void HttpServer::lane_loop() {
  // The reserved lane: one dedicated worker, one request per connection,
  // never re-queued — a full worker pool can't starve liveness probes.
  while (std::optional<Conn> item = lane_queue_->pop()) {
    Conn conn = std::move(*item);
    const double queue_us =
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  conn.enqueued)
            .count();
    if (draining() && conn.buf.empty()) {
      io().close(conn.fd);
      continue;
    }
    serve_one(conn, queue_us);  // lane connections never keep-alive
    close_gently(io(), conn.fd);
  }
}

bool HttpServer::serve_one(Conn& conn, double queue_us) {
  // Nothing buffered: take one short slice to see if the client is
  // talking. Idle keep-alive connections get re-queued (round-robin
  // across workers) until idle_timeout_ms, not camped on.
  if (conn.buf.empty()) {
    const int r = poll_readable(io(), conn.fd, draining() ? 0 : 20);
    if (r < 0) return false;
    if (r == 0) {
      if (draining()) return false;
      if (conn.lane) {
        // A lane probe that has not spoken yet gets one io_timeout wait
        // (it is not re-queued, so idling here would close it instantly).
        if (poll_readable(io(), conn.fd, options_.io_timeout_ms) != 1) {
          return false;
        }
      } else {
        return Clock::now() - conn.last_active <
               std::chrono::milliseconds(options_.idle_timeout_ms);
      }
    }
    const long n = recv_some(io(), conn.fd, conn.buf);
    if (n <= 0) return false;  // orderly close or error
  }
  conn.last_active = Clock::now();

  RequestContext ctx;
  ctx.queue_us = queue_us;

  // One request is in flight: finish reading it within io_timeout_ms.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  HttpRequest req;
  std::string parse_error;
  while (true) {
    const ParseState state =
        parse_request(conn.buf, req, options_.limits, parse_error);
    if (state == ParseState::kDone) break;
    if (state != ParseState::kNeedMore) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      const int status = state == ParseState::kBodyTooLarge  ? 413
                         : state == ParseState::kHeaderTooLarge ? 431
                                                                : 400;
      if (send_all(io(), conn.fd,
                   serialize_response(
                       HttpResponse::error(status, parse_error), false))) {
        served_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      // Client too slow: the request never completed, no response will be
      // written. Count it and give the access log a distinct status (408)
      // instead of dropping it invisibly.
      count_dropped(&req, nullptr, ctx, 408);
      return false;
    }
    const int r = poll_readable(
        io(), conn.fd, static_cast<int>(std::min<long long>(left, 100)));
    if (r < 0) return false;
    if (r == 0) continue;
    if (recv_some(io(), conn.fd, conn.buf) <= 0) return false;
  }

  // Request identity: honor the client's X-Request-Id (sanitized) so a
  // caller can correlate its own logs with ours; otherwise mint one.
  ctx.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ctx.id = sanitize_request_id(req.header("x-request-id"));
  if (ctx.id.empty()) ctx.id = "wfq-" + std::to_string(ctx.seq);

  HttpResponse resp;
  if (conn.lane && req.target != "/healthz" && req.target != "/metrics") {
    // The lane exists for liveness, not for jumping the admission queue:
    // a /query that lands here gets the same 503 the full queue implies.
    resp = HttpResponse::error(503, "server overloaded, try again");
    resp.extra_headers.emplace_back("retry-after", "1");
    rejected_.fetch_add(1, std::memory_order_relaxed);
  } else {
    resp = dispatch_instrumented(req, ctx);
    if (conn.lane) {
      lane_served_.fetch_add(1, std::memory_order_relaxed);
      WFLOG_TELEMETRY(t) {
        t->metrics
            .counter("wflog_server_lane_served_total",
                     "Liveness responses served via the reserved lane "
                     "while the main queue was full")
            ->inc();
      }
    }
  }
  resp.extra_headers.emplace_back("x-request-id", ctx.id);
  if (resp.streamer) {
    // Streamed response: write the chunked head, hand the connection to
    // the producer, then close — streams never keep-alive. A producer
    // exception or send failure drops the connection; the missing terminal
    // 0-chunk tells the client the stream was truncated.
    ChunkedWriter writer(io(), conn.fd);
    const bool head_ok =
        send_all(io(), conn.fd, serialize_stream_head(resp));
    bool producer_ok = false;
    if (head_ok) {
      try {
        resp.streamer(writer);
        producer_ok = true;
      } catch (...) {
        // close without the terminal chunk: the client sees truncation
      }
      if (producer_ok && !writer.failed()) writer.finish();
    }
    if (!head_ok || !producer_ok || writer.failed()) {
      count_dropped(&req, &resp, ctx, 499);
      return false;
    }
    if (options_.observer != nullptr) {
      options_.observer->record(
          make_record(ctx, &req, resp.status, writer.bytes_written(),
                      /*dropped=*/false),
          ctx);
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool keep = req.keep_alive() && !draining() && !conn.lane;
  const auto ser0 = Clock::now();
  const std::string wire = serialize_response(resp, keep);
  const double wire_us =
      std::chrono::duration<double, std::micro>(Clock::now() - ser0).count();
  ctx.serialize_us += wire_us;
  ctx.wall_us += wire_us;
  if (!send_all(io(), conn.fd, wire)) {
    // The handler ran but the response never reached the client — a
    // distinct failure from the 408 read timeout (status 499 in the log).
    count_dropped(&req, &resp, ctx, 499);
    return false;
  }
  if (options_.observer != nullptr) {
    options_.observer->record(
        make_record(ctx, &req, resp.status, resp.body.size(),
                    /*dropped=*/false),
        ctx);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  conn.last_active = Clock::now();
  return keep;
}

void HttpServer::count_dropped(const HttpRequest* req,
                               const HttpResponse* resp, RequestContext& ctx,
                               int status) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  WFLOG_TELEMETRY(t) {
    t->metrics
        .counter("wflog_server_dropped_responses_total",
                 "Requests whose response was never delivered (slow-client "
                 "read timeout or failed write)")
        ->inc();
  }
  if (options_.observer == nullptr) return;
  if (ctx.id.empty()) {
    ctx.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    ctx.id = "wfq-" + std::to_string(ctx.seq);
  }
  options_.observer->record(
      make_record(ctx, req, status, resp != nullptr ? resp->body.size() : 0,
                  /*dropped=*/true),
      ctx);
}

HttpResponse HttpServer::dispatch_instrumented(const HttpRequest& req,
                                               RequestContext& ctx) {
  WFLOG_SPAN(span, "http.request");
  if (span.active()) {
    span.arg("method", req.method);
    span.arg("target", req.target);
    span.arg("request_id", ctx.id);
  }
  const auto t0 = Clock::now();
  HttpResponse resp;
  try {
    resp = router_.dispatch(req, ctx);
  } catch (const std::exception& e) {
    resp = HttpResponse::error(500, e.what());
  }
  ctx.wall_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  WFLOG_TELEMETRY(t) {
    t->metrics
        .counter("wflog_http_requests_total", "HTTP requests dispatched")
        ->inc();
    t->metrics
        .histogram("wflog_http_request_seconds",
                   obs::default_latency_bounds(),
                   "HTTP request handling latency")
        ->observe(std::chrono::duration<double>(Clock::now() - t0).count());
    if (resp.status >= 400) {
      t->metrics
          .counter("wflog_http_request_errors_total",
                   "HTTP responses with status >= 400")
          ->inc();
    }
  }
  if (span.active()) {
    span.arg("status", static_cast<std::uint64_t>(resp.status));
  }
  return resp;
}

}  // namespace wflog::server
