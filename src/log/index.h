#pragma once

// LogIndex: the access structures query evaluation relies on.
//
// Algorithm 2 of the paper assumes "an index structure for each workflow id
// and activity ... used to generate log records for an activity node in
// constant time". LogIndex provides exactly that:
//   * per-instance record arrays in is-lsn order (O(1) (wid, is-lsn) lookup),
//   * per-instance, per-activity occurrence lists (sorted by is-lsn), and
//   * global per-activity counts, which the cost model uses as selectivity
//     estimates.
//
// A LogIndex references the Log it was built from; the Log must outlive it.

#include <unordered_map>
#include <vector>

#include "log/log.h"

namespace wflog {

class LogIndex {
 public:
  explicit LogIndex(const Log& log);
  /// The index borrows the log; a temporary would dangle immediately.
  explicit LogIndex(Log&& log) = delete;

  LogIndex(const LogIndex&) = delete;
  LogIndex& operator=(const LogIndex&) = delete;
  LogIndex(LogIndex&&) = default;
  LogIndex& operator=(LogIndex&&) = default;

  const Log& log() const noexcept { return *log_; }

  const std::vector<Wid>& wids() const noexcept { return log_->wids(); }

  /// Records of one instance in is-lsn order (element i has is-lsn i+1).
  const std::vector<const LogRecord*>& instance(Wid wid) const;

  /// Number of records of the instance (0 for unknown wids).
  std::size_t instance_length(Wid wid) const {
    return instance(wid).size();
  }

  /// O(1) record lookup; nullptr when the instance has no such position.
  const LogRecord* find(Wid wid, IsLsn n) const {
    const auto& recs = instance(wid);
    if (n == 0 || n > recs.size()) return nullptr;
    return recs[n - 1];
  }

  /// is-lsns (sorted ascending) at which `activity` occurs in instance
  /// `wid`; empty list when it never occurs.
  const std::vector<IsLsn>& occurrences(Wid wid, Symbol activity) const;

  /// is-lsns (sorted) of records of instance `wid` whose activity is NOT
  /// `activity` — the match set of a negative atomic pattern ¬t. Computed
  /// on demand (it is usually large, so it is not worth caching).
  std::vector<IsLsn> non_occurrences(Wid wid, Symbol activity) const;

  /// Total occurrences of `activity` across the whole log.
  std::size_t total_count(Symbol activity) const;

  /// Distinct activity symbols present in the log.
  const std::vector<Symbol>& activities() const noexcept {
    return activities_;
  }

 private:
  struct InstanceData {
    std::vector<const LogRecord*> records;  // by is-lsn
    std::unordered_map<Symbol, std::vector<IsLsn>> by_activity;
  };

  const Log* log_;
  std::unordered_map<Wid, InstanceData> instances_;
  std::unordered_map<Symbol, std::size_t> counts_;
  std::vector<Symbol> activities_;
};

}  // namespace wflog
