#include "log/validate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/text.h"

namespace wflog {

std::vector<std::string> check_well_formed(
    const std::vector<LogRecord>& records, const Interner& interner) {
  std::vector<std::string> violations;
  auto violate = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };

  if (records.empty()) {
    violate("Definition 2: a log is a NONEMPTY finite set of log records");
    return violations;
  }

  const Symbol start_sym = interner.find(kStartActivity);
  const Symbol end_sym = interner.find(kEndActivity);

  // Condition (1): lsns are exactly 1..|L| (records arrive sorted by lsn,
  // so the bijection holds iff record i carries lsn i+1).
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].lsn != static_cast<Lsn>(i + 1)) {
      violate("condition 1: lsns are not a bijection with 1.." +
              std::to_string(records.size()) + " (position " +
              std::to_string(i) + " has lsn " +
              std::to_string(records[i].lsn) + ")");
      break;  // everything downstream would repeat the same message
    }
  }

  // Conditions (2)-(4) per instance, walking in lsn order.
  struct InstanceState {
    IsLsn next_is_lsn = 1;
    bool ended = false;
  };
  std::unordered_map<Wid, InstanceState> instances;

  for (const LogRecord& l : records) {
    InstanceState& st = instances[l.wid];

    if (st.ended) {
      violate("condition 4: instance " + std::to_string(l.wid) +
              " has record lsn=" + std::to_string(l.lsn) +
              " after its END record");
      continue;
    }

    const bool is_start = l.activity == start_sym && start_sym != kNoSymbol;
    if ((l.is_lsn == 1) != is_start) {
      violate("condition 2: record lsn=" + std::to_string(l.lsn) +
              " violates 'is-lsn = 1 iff activity = START' (is-lsn=" +
              std::to_string(l.is_lsn) + ", activity=" +
              std::string(interner.name(l.activity)) + ")");
    }

    if (l.is_lsn != st.next_is_lsn) {
      violate("condition 3: instance " + std::to_string(l.wid) +
              " record lsn=" + std::to_string(l.lsn) + " has is-lsn " +
              std::to_string(l.is_lsn) + ", expected " +
              std::to_string(st.next_is_lsn));
      // Resynchronise so one gap doesn't cascade into many messages.
      st.next_is_lsn = l.is_lsn;
    }
    ++st.next_is_lsn;

    const bool is_end = l.activity == end_sym && end_sym != kNoSymbol;
    if (is_end) st.ended = true;

    if ((is_start || is_end) && (!l.in.empty() || !l.out.empty())) {
      violate("START/END record lsn=" + std::to_string(l.lsn) +
              " must have empty input and output maps");
    }
  }

  return violations;
}

void validate_well_formed(const std::vector<LogRecord>& records,
                          const Interner& interner) {
  std::vector<std::string> violations = check_well_formed(records, interner);
  if (!violations.empty()) {
    throw ValidationError("log is not well-formed:\n  " +
                          join(violations, "\n  "));
  }
}

}  // namespace wflog
