#pragma once

// The v2 ("wfseg") block-compressed segment format of LogStore.
//
// On-disk layout of a v2 segment:
//
//   +--------------------------------------------------------------+
//   | file magic "wfsegv2\n"                              8 bytes  |
//   +--------------------------------------------------------------+
//   | block 0: header (36 B) + compressed payload                  |
//   | block 1: header (36 B) + compressed payload                  |
//   | ...                                                          |
//   +---------------- sealed segments only ------------------------+
//   | footer body: zone table + per-wid is-lsn watermark           |
//   | trailer: [u32 footer crc] [u32 footer len] ["wfsegftr"]      |
//   +--------------------------------------------------------------+
//
// Block header (little-endian):
//   u32 magic  u32 codec  u32 compressed_size  u32 uncompressed_size
//   u32 record_count  u64 first_lsn  u32 payload_crc  u32 header_crc
// header_crc covers the preceding 32 bytes, payload_crc the compressed
// payload. The payload is the store's newline-terminated record lines
// (log/io_jsonl.h), compressed with log/compress.h (codec 1) or stored
// raw (codec 0) when compression does not shrink it.
//
// The footer (log/zonemap.h) is written once, when the segment is sealed
// at roll time, after every block is durable. Its own CRC makes reopen
// O(footer): a sealed segment with a valid footer needs no block re-scan.
// A torn footer — crash mid-seal — is recovered by scanning blocks
// individually against their per-block CRCs and truncating the partial
// footer bytes; nothing acknowledged is lost because block writes are
// fsynced (per the store's policy) before the seal begins.
//
// Tearing vs corruption. A crash leaves a byte-prefix of the intended
// file, so the scanner classifies the first unreadable position:
//   * fewer than a full header's bytes remain, or the header is valid but
//     its payload is incomplete  -> torn (truncate and resume);
//   * a complete header that fails magic/CRC, or a complete payload that
//     fails CRC or does not inflate  -> corruption (error / quarantine).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "log/record.h"
#include "log/zonemap.h"

namespace wflog {

inline constexpr std::string_view kSegV2FileMagic = "wfsegv2\n";
inline constexpr std::string_view kSegV2FooterMagic = "wfsegftr";
inline constexpr std::uint32_t kSegV2BlockMagic = 0x326B6C62;  // "blk2"
inline constexpr std::size_t kSegV2BlockHeaderSize = 36;
inline constexpr std::size_t kSegV2TrailerSize = 16;  // crc + len + magic

/// Block payload encodings. kDeflate is the default; kRaw is the fallback
/// when compression does not shrink the payload (already-compressed or
/// tiny blocks).
enum class BlockCodec : std::uint32_t { kRaw = 0, kDeflate = 1 };

/// A framed block ready to append, plus the zone describing it.
struct EncodedBlock {
  std::string bytes;
  BlockZone zone;
};

/// Accumulates record lines for the next block of a live tail segment.
/// add() is paired with remove_last() so the store can un-buffer a record
/// whose block write failed without copying the builder.
class BlockBuilder {
 public:
  /// Appends `line` (a store line WITHOUT trailing newline) and the
  /// record's zone-relevant metadata.
  void add(const LogRecord& record, std::string_view activity_name,
           std::string_view line);

  /// Removes the most recently added record. Precondition: !empty().
  void remove_last();

  void clear();

  bool empty() const noexcept { return records_.empty(); }
  std::size_t record_count() const noexcept { return records_.size(); }
  std::size_t payload_bytes() const noexcept { return payload_.size(); }

  /// The raw (uncompressed) newline-terminated lines buffered so far —
  /// load() reads acknowledged-but-unflushed records from here.
  std::string_view payload() const noexcept { return payload_; }

  /// Compresses and frames the buffered records into a block positioned
  /// at `file_offset`. Does not reset the builder (call clear() once the
  /// bytes are durably written). Precondition: !empty().
  EncodedBlock encode(std::uint64_t file_offset) const;

 private:
  struct PendingRecord {
    std::uint64_t wid = 0;
    std::uint64_t lsn = 0;
    std::string activity;
    std::uint32_t line_bytes = 0;  // including the newline
  };

  std::string payload_;
  std::vector<PendingRecord> records_;
};

/// Result of scanning a v2 segment's blocks front-to-back.
struct BlockScan {
  /// Zones of every clean block, in file order, fully populated (wid/lsn
  /// bounds and activity blooms are recomputed from the decoded payloads).
  std::vector<BlockZone> zones;
  /// Uncompressed payloads, parallel to `zones`.
  std::vector<std::string> payloads;
  /// Bytes covered by the file magic plus the clean blocks.
  std::size_t good_bytes = 0;
  /// Trailing bytes at good_bytes look like an interrupted append
  /// (truncate to good_bytes and resume).
  bool torn = false;
  /// Non-empty: structurally complete but CRC-bad / undecodable data at
  /// good_bytes — corruption, not tearing.
  std::string corrupt_reason;
};

/// Scans `file` (the whole segment's bytes) block by block, classifying
/// the first unreadable position as torn or corrupt. Payload CRCs are
/// verified and payloads inflated; zones are rebuilt from the decoded
/// records. Call only when the footer fast path does not apply (unsealed
/// or torn-footer segments) — this is the recovery path.
BlockScan scan_v2_blocks(std::string_view file);

/// A parsed footer plus where its body begins in the file.
struct FooterRead {
  SegmentFooter footer;
  std::size_t footer_start = 0;  // byte offset of the footer body
};

/// Reads the sealed-segment footer from the end of `file`. Returns
/// nullopt when there is no structurally valid, CRC-clean footer whose
/// zone table exactly tiles the bytes between file magic and footer —
/// callers then fall back to scan_v2_blocks().
std::optional<FooterRead> try_read_v2_footer(std::string_view file);

/// Serializes `footer` (body + trailer) for appending to a segment.
std::string encode_v2_footer(const SegmentFooter& footer);

/// Extracts and decompresses one block's payload, validating the header
/// against `zone` and the payload CRC. Throws IoError on any mismatch.
std::string read_v2_block_payload(std::string_view file,
                                  const BlockZone& zone);

}  // namespace wflog
