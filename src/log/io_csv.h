#pragma once

// CSV serialization of logs.
//
// Column layout mirrors the paper's Figure 3 table:
//   lsn,wid,is_lsn,activity,input,output
// where input/output encode an attribute map as `a=1; b="x"` (entries
// joined by "; ", values rendered/parsed by Value). The whole map field is
// RFC 4180-escaped.

#include <iosfwd>
#include <string>

#include "log/log.h"

namespace wflog {

/// Writes `log` as CSV with a header row.
void write_csv(const Log& log, std::ostream& out);
std::string to_csv(const Log& log);

/// Reads a CSV log (header row required) and validates it (Definition 2).
/// Throws IoError on malformed input, ValidationError on a bad log.
Log read_csv(std::istream& in);
Log csv_to_log(const std::string& text);

/// Attribute-map helpers shared with the JSONL codec and the CLI.
std::string attr_map_to_string(const AttrMap& map, const Interner& interner);
AttrMap parse_attr_map(std::string_view text, Interner& interner);

}  // namespace wflog
