#include "log/io_jsonl.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32.h"
#include "common/error.h"
#include "common/text.h"

namespace wflog {
namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_value(std::ostream& out, const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      out << "null";
      break;
    case ValueKind::kInt:
      out << v.as_int();
      break;
    case ValueKind::kDouble: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[40];
        auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
        out.write(buf, end - buf);
        // Preserve double-ness across a round trip.
        std::string_view sv(buf, static_cast<std::size_t>(end - buf));
        if (sv.find('.') == std::string_view::npos &&
            sv.find('e') == std::string_view::npos) {
          out << ".0";
        }
      } else {
        out << "null";  // JSON has no inf/nan
      }
      break;
    }
    case ValueKind::kBool:
      out << (v.as_bool() ? "true" : "false");
      break;
    case ValueKind::kString:
      write_json_string(out, v.as_string());
      break;
  }
}

void write_json_map(std::ostream& out, const AttrMap& map,
                    const Interner& interner) {
  out << '{';
  bool first = true;
  for (const AttrEntry& e : map) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, interner.name(e.attr));
    out << ':';
    write_json_value(out, e.value);
  }
  out << '}';
}

/// Minimal recursive-descent JSON parser covering the subset this codec
/// emits (objects of scalars, nested one level). Positions reported in
/// bytes within the line.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses the top-level record object.
  void parse_record(LogRecord& l, Interner& interner) {
    skip_ws();
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "lsn") {
        l.lsn = static_cast<Lsn>(parse_uint());
      } else if (key == "wid") {
        l.wid = static_cast<Wid>(parse_uint());
      } else if (key == "is_lsn") {
        l.is_lsn = static_cast<IsLsn>(parse_uint());
      } else if (key == "activity") {
        l.activity = interner.intern(parse_string());
      } else if (key == "in") {
        l.in = parse_map(interner);
      } else if (key == "out") {
        l.out = parse_map(interner);
      } else {
        skip_value();  // forward compatibility: ignore unknown keys
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after record object");
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw IoError("JSONL: " + msg + " (byte " + std::to_string(pos_) + ")");
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::uint64_t parse_uint() {
    std::uint64_t v = 0;
    auto [p, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), v);
    if (ec != std::errc{}) fail("expected unsigned integer");
    pos_ = static_cast<std::size_t>(p - text_.data());
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || p != text_.data() + pos_ + 4) {
              fail("bad \\u escape");
            }
            pos_ += 4;
            // This codec only emits \u for control chars; decode BMP
            // codepoints to UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            out += e;
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '"') return Value{parse_string()};
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Value{};
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Value{true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Value{false};
    }
    // number: try int64 first, fall back to double
    std::int64_t i = 0;
    auto [ip, iec] =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), i);
    double d = 0;
    auto [dp, dec] =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), d);
    if (dec != std::errc{}) fail("expected JSON value");
    if (iec == std::errc{} && ip == dp) {
      pos_ = static_cast<std::size_t>(ip - text_.data());
      return Value{i};
    }
    pos_ = static_cast<std::size_t>(dp - text_.data());
    return Value{d};
  }

  AttrMap parse_map(Interner& interner) {
    AttrMap map;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      map.set(interner.intern(key), parse_value());
    }
    return map;
  }

  void skip_value() {
    const char c = peek();
    if (c == '{') {
      int depth = 0;
      bool in_str = false;
      for (; pos_ < text_.size(); ++pos_) {
        const char k = text_[pos_];
        if (in_str) {
          if (k == '\\') {
            ++pos_;
          } else if (k == '"') {
            in_str = false;
          }
        } else if (k == '"') {
          in_str = true;
        } else if (k == '{') {
          ++depth;
        } else if (k == '}') {
          if (--depth == 0) {
            ++pos_;
            return;
          }
        }
      }
      fail("unterminated object");
    }
    parse_value();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_jsonl_record(std::ostream& out, const LogRecord& l,
                        const Interner& in) {
  out << "{\"lsn\":" << l.lsn << ",\"wid\":" << l.wid
      << ",\"is_lsn\":" << l.is_lsn << ",\"activity\":";
  write_json_string(out, in.name(l.activity));
  out << ",\"in\":";
  write_json_map(out, l.in, in);
  out << ",\"out\":";
  write_json_map(out, l.out, in);
  out << "}\n";
}

LogRecord parse_jsonl_record(std::string_view line, Interner& interner) {
  LogRecord l;
  JsonParser(line).parse_record(l, interner);
  return l;
}

namespace {

constexpr std::size_t kCrcHexLen = 8;

bool has_crc_prefix(std::string_view line) {
  if (line.size() < kCrcHexLen + 2 || line[kCrcHexLen] != ' ') return false;
  for (std::size_t i = 0; i < kCrcHexLen; ++i) {
    if (std::isxdigit(static_cast<unsigned char>(line[i])) == 0) return false;
  }
  return line[kCrcHexLen + 1] == '{';
}

}  // namespace

std::string to_store_line(const LogRecord& record, const Interner& interner) {
  std::ostringstream body;
  write_jsonl_record(body, record, interner);
  std::string line = std::move(body).str();
  line.pop_back();  // write_jsonl_record's trailing newline; re-added below
  char prefix[kCrcHexLen + 2];
  std::snprintf(prefix, sizeof prefix, "%08x ", crc32(line));
  line.insert(0, prefix, kCrcHexLen + 1);
  line += '\n';
  return line;
}

LogRecord parse_store_line(std::string_view line, Interner& interner) {
  if (!has_crc_prefix(line)) return parse_jsonl_record(line, interner);
  const std::string_view body = line.substr(kCrcHexLen + 1);
  std::uint32_t expected = 0;
  std::from_chars(line.data(), line.data() + kCrcHexLen, expected, 16);
  if (crc32(body) != expected) {
    throw IoError("store record checksum mismatch");
  }
  return parse_jsonl_record(body, interner);
}

void write_jsonl(const Log& log, std::ostream& out) {
  const Interner& in = log.interner();
  for (const LogRecord& l : log) {
    write_jsonl_record(out, l, in);
  }
}

std::string to_jsonl(const Log& log) {
  std::ostringstream os;
  write_jsonl(log, os);
  return os.str();
}

Log read_jsonl(std::istream& in) {
  Interner interner;
  std::vector<LogRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    LogRecord l;
    try {
      JsonParser(line).parse_record(l, interner);
    } catch (const IoError& e) {
      throw IoError("line " + std::to_string(lineno) + ": " + e.what());
    }
    records.push_back(std::move(l));
  }
  return Log::from_records(std::move(records), std::move(interner));
}

Log jsonl_to_log(const std::string& text) {
  std::istringstream is(text);
  return read_jsonl(is);
}

}  // namespace wflog
