#include "log/slice.h"

#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"
#include "core/shard.h"  // shard_of_wid (inline — no core link dependency)

namespace wflog {
namespace {

/// Copies the selected records (a per-instance-prefix-closed subset, in
/// lsn order), renumbers lsns, and validates.
Log project(const Log& log, const std::function<bool(const LogRecord&)>& keep) {
  std::vector<LogRecord> records;
  for (const LogRecord& l : log) {
    if (!keep(l)) continue;
    LogRecord copy = l;
    copy.lsn = static_cast<Lsn>(records.size() + 1);
    records.push_back(std::move(copy));
  }
  if (records.empty()) {
    throw ValidationError("projection selected no records (a log is "
                          "nonempty by Definition 2)");
  }
  return Log::from_records(std::move(records), log.interner());
}

}  // namespace

Log filter_instances(const Log& log, const std::function<bool(Wid)>& keep) {
  // Evaluate the predicate once per wid, not per record.
  std::unordered_map<Wid, bool> decision;
  for (Wid wid : log.wids()) decision.emplace(wid, keep(wid));
  return project(log, [&decision](const LogRecord& l) {
    return decision.at(l.wid);
  });
}

Log keep_instances(const Log& log, std::span<const Wid> wids) {
  const std::unordered_set<Wid> wanted(wids.begin(), wids.end());
  return filter_instances(
      log, [&wanted](Wid wid) { return wanted.contains(wid); });
}

Log sample_instances(const Log& log, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<Wid> chosen;
  for (Wid wid : log.wids()) {
    if (rng.bernoulli(fraction)) chosen.insert(wid);
  }
  if (chosen.empty() && !log.wids().empty()) {
    // Guarantee nonemptiness: keep one instance.
    chosen.insert(log.wids()[rng.index(log.wids().size())]);
  }
  return filter_instances(
      log, [&chosen](Wid wid) { return chosen.contains(wid); });
}

Log truncate_at(const Log& log, Lsn max_lsn) {
  if (max_lsn == 0) {
    throw ValidationError("truncate_at: max_lsn must be >= 1");
  }
  return project(log,
                 [max_lsn](const LogRecord& l) { return l.lsn <= max_lsn; });
}

Log filter_by_length(const Log& log, std::size_t min_len,
                     std::size_t max_len) {
  std::unordered_map<Wid, std::size_t> lengths;
  for (const LogRecord& l : log) ++lengths[l.wid];
  return filter_instances(log, [&lengths, min_len, max_len](Wid wid) {
    const std::size_t len = lengths.at(wid);
    return len >= min_len && len <= max_len;
  });
}

Log shard_instances(const Log& log, std::size_t shard,
                    std::size_t num_shards) {
  if (num_shards == 0 || shard >= num_shards) {
    throw ValidationError("shard_instances: need shard < num_shards");
  }
  return filter_instances(log, [shard, num_shards](Wid wid) {
    return shard_of_wid(wid, num_shards) == shard;
  });
}

}  // namespace wflog
