#pragma once

// LogStore: a minimal durable, append-only store for workflow logs — the
// persistent "workflow log" box of the paper's Figure 2, sitting between
// the execution engine (writer) and the query engine (reader).
//
// Layout: a directory containing
//   MANIFEST            first line "wflog-store v1", then
//                       records_per_segment=N, then one segment file name
//                       per line, in order
//   seg-000001.jsonl    v1 segment: checksummed JSONL records
//                       ("crc32hex json\n", log/io_jsonl.h store framing)
//   seg-000002.wfseg    v2 segment: compressed, zone-mapped blocks
//                       (log/segfmt.h); sealed segments carry a footer
//   QUARANTINE-000001   corrupt bytes set aside by a recovering open
//
// Segments are bounded by Options::records_per_segment each; formats mix
// freely within one store (v1 history stays readable forever, new
// segments use Options::segment_format — v2 by default).
//
// Durability contract (see README "Durability contract" for the prose
// version). All writes flow through the injectable FileIo seam
// (log/fileio.h); transient IO errors are retried with bounded backoff
// before an IoError surfaces. What survives a crash depends on
// Options::fsync_policy:
//
//   kPerAppend  every append is fsynced before it returns: an
//               acknowledged record is never lost, even across power
//               failure (the default).
//   kInterval   fsync every fsync_interval_records appends and at every
//               segment roll: power loss can drop up to the unsynced
//               suffix of the final segment — always a clean log prefix.
//   kOff        no fsync (OS page cache only): records survive process
//               exit, power loss may drop any suffix of the final
//               segment.
//
// v2 addendum. A v2 tail buffers acknowledged records in memory until a
// block is flushed — which happens at every fsync boundary, so under
// kPerAppend nothing is ever buffered past an acknowledged append and the
// zero-acked-loss guarantee is unchanged. Under kInterval/kOff the
// in-memory pending block narrows what survives an abrupt PROCESS death
// (v1 wrote every line into OS cache immediately; v2 holds up to
// block_target_bytes in user space) — the crash-recovery contract, which
// only ever promised a clean prefix under those policies, is unchanged,
// and a clean shutdown flushes the buffer. Sealing (footer write) happens
// at roll time after every block is durable; a torn footer is recovered
// block-by-block from the per-block CRCs.
//
// Under every policy a finished segment is fsynced before the manifest
// names its successor, so loss is confined to the tail segment. Reopening
// recovers the per-instance state (next is-lsn, completed set) by
// streaming the segments; a torn final line left by a crash is detected
// (CRC + framing) and physically truncated so writing resumes exactly
// where the durable prefix stopped. Corrupt bytes mid-store fail the open
// with a structured IoError by default; with Options::quarantine_corruption
// the readable prefix is recovered instead, the corrupt suffix is moved to
// a QUARANTINE file, and the RecoveryReport says exactly what was dropped.
//
// The reader side materializes the whole validated Log — the store bounds
// file sizes and gives durability, not out-of-core querying.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "log/builder.h"
#include "log/fileio.h"
#include "log/log.h"
#include "log/segfmt.h"
#include "log/zonemap.h"

namespace wflog {

/// When appended records reach stable storage. See the durability
/// contract above.
enum class FsyncPolicy { kPerAppend, kInterval, kOff };

/// On-disk segment format for NEWLY created segments. Both formats are
/// readable forever; a mixed store (v1 history, v2 tail) is normal after
/// upgrading. See log/segfmt.h for the v2 layout.
enum class SegmentFormat {
  kV1Jsonl,   ///< one checksummed JSONL line per record ("seg-*.jsonl")
  kV2Blocks,  ///< compressed, zone-mapped blocks ("seg-*.wfseg")
};

/// What a recovering open() found and did. All-zero (clean()) for a store
/// that was shut down properly.
struct RecoveryReport {
  std::size_t records_recovered = 0;
  /// Corrupt (unparseable / checksum-mismatched) record lines dropped by
  /// quarantine. Does not include the torn tail line, reported separately.
  std::size_t records_dropped = 0;
  /// Segments truncated or removed entirely by quarantine.
  std::size_t segments_quarantined = 0;
  std::uintmax_t bytes_quarantined = 0;
  /// A partial final line (crash mid-append) was physically truncated.
  bool torn_tail_truncated = false;
  /// Human-readable one-liners for each recovery action taken.
  std::vector<std::string> notes;

  bool clean() const noexcept {
    return records_dropped == 0 && segments_quarantined == 0 &&
           !torn_tail_truncated;
  }
};

class LogStore {
 public:
  struct Options {
    std::size_t records_per_segment = 10'000;
    FsyncPolicy fsync_policy = FsyncPolicy::kPerAppend;
    /// kInterval: fsync after this many appends (and at segment rolls).
    std::size_t fsync_interval_records = 256;
    /// Transient IO failures (append/flush/fsync/manifest) are retried
    /// this many times, sleeping retry_backoff, doubling per attempt,
    /// before the structured IoError surfaces.
    std::size_t max_io_retries = 3;
    std::chrono::milliseconds retry_backoff{1};
    /// open(): recover the readable prefix past mid-store corruption,
    /// quarantining the corrupt suffix, instead of throwing IoError.
    bool quarantine_corruption = false;
    /// Write-path IO seam; nullptr = the real filesystem. Tests inject a
    /// FaultIo here.
    std::shared_ptr<FileIo> io;
    /// Format for segments this store CREATES. Existing segments keep
    /// whatever format they were written in.
    SegmentFormat segment_format = SegmentFormat::kV2Blocks;
    /// v2: a block is flushed once its uncompressed payload reaches this
    /// many bytes (and always at fsync boundaries, sync(), and rolls).
    std::size_t block_target_bytes = 64 * 1024;
  };

  /// Creates a new store in `dir` (created if missing; must not already
  /// contain a store). Throws IoError on filesystem failures.
  static LogStore create(const std::filesystem::path& dir);
  static LogStore create(const std::filesystem::path& dir, Options options);

  /// Opens an existing store, recovering writer state from the segments.
  /// records_per_segment comes from the MANIFEST; the other options apply
  /// as given. Missing/empty/truncated manifests and listed-but-absent
  /// segments raise IoError naming the offending path. `report`, when
  /// non-null, receives what recovery found (also kept internally, see
  /// recovery_report()).
  static LogStore open(const std::filesystem::path& dir);
  static LogStore open(const std::filesystem::path& dir, Options options,
                       RecoveryReport* report = nullptr);

  LogStore(LogStore&&) = default;
  LogStore& operator=(LogStore&&) = default;
  ~LogStore();

  // ----- writing ---------------------------------------------------------
  Wid begin_instance();
  void record(Wid wid, std::string_view activity, const NamedAttrs& in = {},
              const NamedAttrs& out = {});
  void end_instance(Wid wid);

  /// Forces everything appended so far to stable storage regardless of
  /// the fsync policy. Throws IoError after exhausted retries.
  void sync();

  // ----- reading ---------------------------------------------------------
  /// Materializes everything appended so far as a validated Log.
  Log load() const;

  /// A zone-map-pruned load: the log restricted to the workflow instances
  /// that could possibly contain every activity in `required` (see
  /// required_activities in core/pattern.h). Lsns are renumbered to keep
  /// the result a valid Log; instance ids and is-lsns — the coordinates
  /// incidents are made of — are untouched, so evaluating a pattern whose
  /// required set is `required` over `log` yields incident sets
  /// bit-identical to evaluation over load(). Blocks of sealed v2
  /// segments whose zone maps rule out every candidate instance are
  /// skipped without being read; v1 segments, the unsealed tail, and the
  /// in-memory pending buffer have no zone maps and are always read.
  struct PrunedLoad {
    Log log = Log::from_records_unchecked({}, {});
    std::size_t blocks_total = 0;    ///< sealed v2 blocks considered
    std::size_t blocks_read = 0;
    std::size_t blocks_skipped = 0;
    std::size_t records_kept = 0;
    /// False when `required` was empty — zone maps cannot prune and the
    /// result is simply load().
    bool pruned = false;
  };
  PrunedLoad load_pruned(const std::vector<std::string>& required) const;

  /// Storage-level shape of the store, cheap to compute (zone maps are
  /// cached in memory; no segment file is read).
  struct StorageStats {
    std::size_t segments_v1 = 0;
    std::size_t segments_v2 = 0;
    std::size_t sealed_blocks = 0;  ///< blocks covered by cached zone maps
    std::uint64_t compressed_payload_bytes = 0;    ///< of sealed blocks
    std::uint64_t uncompressed_payload_bytes = 0;  ///< of sealed blocks
    std::uint64_t blocks_read = 0;     ///< lifetime of this store handle
    std::uint64_t blocks_skipped = 0;  ///< lifetime of this store handle
  };
  StorageStats storage_stats() const;

  /// Offline compaction: rewrites every segment of the store in `dir`
  /// into sealed v2 segments with full-size compressed blocks, under
  /// fresh segment ids, then atomically swaps the manifest and deletes
  /// the old files. Crash-safe at every step (new data is fully fsynced
  /// before the manifest points at it; a crash leaves either the old or
  /// the new store, never a mix) and idempotent. Orphan segment files
  /// from earlier interrupted compactions are vacuumed. The store must
  /// not be open elsewhere.
  struct CompactionReport {
    std::size_t records = 0;
    std::size_t segments_before = 0;
    std::size_t segments_after = 0;
    std::uintmax_t bytes_before = 0;
    std::uintmax_t bytes_after = 0;
    std::size_t blocks_written = 0;
  };
  static CompactionReport compact(const std::filesystem::path& dir);
  static CompactionReport compact(const std::filesystem::path& dir,
                                  Options options);

  std::size_t num_records() const noexcept { return num_records_; }
  std::size_t num_segments() const noexcept { return segments_.size(); }
  const std::filesystem::path& directory() const noexcept { return dir_; }
  /// What the open() that produced this store had to recover.
  const RecoveryReport& recovery_report() const noexcept { return recovery_; }
  /// True after a structural write failure (failed roll or unrecoverable
  /// tail): every further append throws; reopen the directory to recover.
  bool failed() const noexcept { return poisoned_; }

  /// Recovers a poisoned (or healthy) store by re-running open() on its
  /// own directory — same options and IO seam, but with quarantine
  /// recovery forced on so a corrupt suffix is set aside instead of
  /// re-poisoning — and replacing *this with the result. On success the
  /// store is un-poisoned, writer state is rebuilt from what is durably
  /// on disk, and the returned report says what recovery found. Throws
  /// IoError (leaving *this untouched) when the directory is still
  /// unreadable — the caller retries later. This is wfqd's degraded-mode
  /// healing path: acked records are durable before they are acked, so
  /// reopening loses nothing a client was told was applied.
  RecoveryReport reopen_in_place();

 private:
  LogStore() = default;

  void append_record(Wid wid, std::string_view activity, const AttrMap& in,
                     const AttrMap& out, Interner& interner);
  void roll_segment();
  void write_manifest();
  void write_all(std::string_view data, std::size_t& off);
  void recover_tail_to(std::uintmax_t good_bytes) noexcept;
  /// v2: compresses the pending buffer into one block and appends it.
  /// On failure the pending records stay buffered (minus nothing) and the
  /// tail is truncated back to the last durable block boundary.
  // Encodes pending_ as one block at the tail and writes it out; with
  // sync_after, the fsync happens inside the same guarded scope, so on
  // ANY failure the block is truncated away and every buffered record —
  // acknowledged or mid-append — remains in pending_.
  void flush_pending_block(bool sync_after = false);
  /// v2: writes the footer sealing the current tail segment.
  void seal_tail();
  /// Runs `fn`, retrying IoError up to max_io_retries times with
  /// exponential backoff; rethrows a structured IoError on exhaustion.
  template <typename Fn>
  void with_retries(const char* what, Fn&& fn);
  std::filesystem::path segment_path(std::size_t index) const;
  /// 1 + the largest numeric id among current segment file names — ids
  /// are never reused, so compaction (which shrinks the list) cannot
  /// collide with later rolls.
  std::size_t next_segment_id() const;

  std::filesystem::path dir_;
  Options options_;
  std::shared_ptr<FileIo> io_;
  std::vector<std::string> segments_;  // file names, in MANIFEST order
  WriteFilePtr tail_;
  std::uintmax_t tail_bytes_ = 0;  // bytes accepted into the tail segment
  std::size_t tail_records_ = 0;   // records in the open tail segment
  std::size_t records_since_sync_ = 0;
  std::size_t num_records_ = 0;
  bool poisoned_ = false;
  RecoveryReport recovery_;
  std::unordered_map<Wid, IsLsn> next_is_lsn_;  // 0 = completed
  Wid next_wid_ = 1;

  // ----- v2 segment state -------------------------------------------------
  SegmentFormat tail_format_ = SegmentFormat::kV1Jsonl;
  /// The tail carries a valid footer (crash between seal and successor
  /// creation): the next append must roll instead of appending.
  bool tail_sealed_ = false;
  /// Records acknowledged but not yet framed into a block (v2 only; empty
  /// whenever the fsync policy is kPerAppend).
  BlockBuilder pending_;
  /// Zones of the blocks already in the (unsealed v2) tail, for sealing.
  std::vector<BlockZone> tail_zones_;
  /// Wids touched in the tail segment -> next is-lsn (0 = completed); the
  /// footer's watermark delta.
  std::map<Wid, IsLsn> tail_watermark_;
  /// Parsed footers of sealed v2 segments, by segment index. In-memory
  /// zone-map cache: load_pruned and storage_stats never re-read them.
  std::map<std::size_t, SegmentFooter> footers_;
  mutable std::uint64_t blocks_read_ = 0;
  mutable std::uint64_t blocks_skipped_ = 0;
};

}  // namespace wflog
