#pragma once

// LogStore: a minimal durable, append-only store for workflow logs — the
// persistent "workflow log" box of the paper's Figure 2, sitting between
// the execution engine (writer) and the query engine (reader).
//
// Layout: a directory containing
//   MANIFEST            first line "wflog-store v1", then one segment
//                       file name per line, in order
//   seg-000001.jsonl    JSONL records (log/io_jsonl.h framing), bounded
//   seg-000002.jsonl    by Options::records_per_segment each
//
// Writes append to the tail segment and are flushed per append (a store
// survives process exit after any append; a torn final line left by a
// crash is detected and dropped on open). Reopening recovers the per-
// instance state (next is-lsn, completed set) by streaming the segments,
// so writing can resume exactly where it stopped.
//
// The reader side materializes the whole validated Log — the store bounds
// file sizes and gives durability, not out-of-core querying.

#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>

#include "log/builder.h"
#include "log/log.h"

namespace wflog {

class LogStore {
 public:
  struct Options {
    std::size_t records_per_segment = 10'000;
  };

  /// Creates a new store in `dir` (created if missing; must not already
  /// contain a store). Throws IoError on filesystem failures.
  static LogStore create(const std::filesystem::path& dir);
  static LogStore create(const std::filesystem::path& dir, Options options);

  /// Opens an existing store, recovering writer state from the segments.
  static LogStore open(const std::filesystem::path& dir);

  LogStore(LogStore&&) = default;
  LogStore& operator=(LogStore&&) = default;

  // ----- writing ---------------------------------------------------------
  Wid begin_instance();
  void record(Wid wid, std::string_view activity, const NamedAttrs& in = {},
              const NamedAttrs& out = {});
  void end_instance(Wid wid);

  // ----- reading ---------------------------------------------------------
  /// Materializes everything appended so far as a validated Log.
  Log load() const;

  std::size_t num_records() const noexcept { return num_records_; }
  std::size_t num_segments() const noexcept { return segments_.size(); }
  const std::filesystem::path& directory() const noexcept { return dir_; }

 private:
  LogStore() = default;

  void append_record(Wid wid, std::string_view activity, const AttrMap& in,
                     const AttrMap& out, Interner& interner);
  void roll_segment();
  void write_manifest() const;
  std::filesystem::path segment_path(std::size_t index) const;

  std::filesystem::path dir_;
  Options options_;
  std::vector<std::string> segments_;  // file names, in MANIFEST order
  std::ofstream tail_;
  std::size_t tail_records_ = 0;  // records in the open tail segment
  std::size_t num_records_ = 0;
  std::unordered_map<Wid, IsLsn> next_is_lsn_;  // 0 = completed
  Wid next_wid_ = 1;
};

}  // namespace wflog
