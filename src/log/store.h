#pragma once

// LogStore: a minimal durable, append-only store for workflow logs — the
// persistent "workflow log" box of the paper's Figure 2, sitting between
// the execution engine (writer) and the query engine (reader).
//
// Layout: a directory containing
//   MANIFEST            first line "wflog-store v1", then
//                       records_per_segment=N, then one segment file name
//                       per line, in order
//   seg-000001.jsonl    checksummed JSONL records ("crc32hex json\n",
//   seg-000002.jsonl    log/io_jsonl.h store framing), bounded by
//                       Options::records_per_segment each
//   QUARANTINE-000001   corrupt bytes set aside by a recovering open
//
// Durability contract (see README "Durability contract" for the prose
// version). All writes flow through the injectable FileIo seam
// (log/fileio.h); transient IO errors are retried with bounded backoff
// before an IoError surfaces. What survives a crash depends on
// Options::fsync_policy:
//
//   kPerAppend  every append is fsynced before it returns: an
//               acknowledged record is never lost, even across power
//               failure (the default).
//   kInterval   fsync every fsync_interval_records appends and at every
//               segment roll: power loss can drop up to the unsynced
//               suffix of the final segment — always a clean log prefix.
//   kOff        no fsync (OS page cache only): records survive process
//               exit, power loss may drop any suffix of the final
//               segment.
//
// Under every policy a finished segment is fsynced before the manifest
// names its successor, so loss is confined to the tail segment. Reopening
// recovers the per-instance state (next is-lsn, completed set) by
// streaming the segments; a torn final line left by a crash is detected
// (CRC + framing) and physically truncated so writing resumes exactly
// where the durable prefix stopped. Corrupt bytes mid-store fail the open
// with a structured IoError by default; with Options::quarantine_corruption
// the readable prefix is recovered instead, the corrupt suffix is moved to
// a QUARANTINE file, and the RecoveryReport says exactly what was dropped.
//
// The reader side materializes the whole validated Log — the store bounds
// file sizes and gives durability, not out-of-core querying.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "log/builder.h"
#include "log/fileio.h"
#include "log/log.h"

namespace wflog {

/// When appended records reach stable storage. See the durability
/// contract above.
enum class FsyncPolicy { kPerAppend, kInterval, kOff };

/// What a recovering open() found and did. All-zero (clean()) for a store
/// that was shut down properly.
struct RecoveryReport {
  std::size_t records_recovered = 0;
  /// Corrupt (unparseable / checksum-mismatched) record lines dropped by
  /// quarantine. Does not include the torn tail line, reported separately.
  std::size_t records_dropped = 0;
  /// Segments truncated or removed entirely by quarantine.
  std::size_t segments_quarantined = 0;
  std::uintmax_t bytes_quarantined = 0;
  /// A partial final line (crash mid-append) was physically truncated.
  bool torn_tail_truncated = false;
  /// Human-readable one-liners for each recovery action taken.
  std::vector<std::string> notes;

  bool clean() const noexcept {
    return records_dropped == 0 && segments_quarantined == 0 &&
           !torn_tail_truncated;
  }
};

class LogStore {
 public:
  struct Options {
    std::size_t records_per_segment = 10'000;
    FsyncPolicy fsync_policy = FsyncPolicy::kPerAppend;
    /// kInterval: fsync after this many appends (and at segment rolls).
    std::size_t fsync_interval_records = 256;
    /// Transient IO failures (append/flush/fsync/manifest) are retried
    /// this many times, sleeping retry_backoff, doubling per attempt,
    /// before the structured IoError surfaces.
    std::size_t max_io_retries = 3;
    std::chrono::milliseconds retry_backoff{1};
    /// open(): recover the readable prefix past mid-store corruption,
    /// quarantining the corrupt suffix, instead of throwing IoError.
    bool quarantine_corruption = false;
    /// Write-path IO seam; nullptr = the real filesystem. Tests inject a
    /// FaultIo here.
    std::shared_ptr<FileIo> io;
  };

  /// Creates a new store in `dir` (created if missing; must not already
  /// contain a store). Throws IoError on filesystem failures.
  static LogStore create(const std::filesystem::path& dir);
  static LogStore create(const std::filesystem::path& dir, Options options);

  /// Opens an existing store, recovering writer state from the segments.
  /// records_per_segment comes from the MANIFEST; the other options apply
  /// as given. Missing/empty/truncated manifests and listed-but-absent
  /// segments raise IoError naming the offending path. `report`, when
  /// non-null, receives what recovery found (also kept internally, see
  /// recovery_report()).
  static LogStore open(const std::filesystem::path& dir);
  static LogStore open(const std::filesystem::path& dir, Options options,
                       RecoveryReport* report = nullptr);

  LogStore(LogStore&&) = default;
  LogStore& operator=(LogStore&&) = default;
  ~LogStore();

  // ----- writing ---------------------------------------------------------
  Wid begin_instance();
  void record(Wid wid, std::string_view activity, const NamedAttrs& in = {},
              const NamedAttrs& out = {});
  void end_instance(Wid wid);

  /// Forces everything appended so far to stable storage regardless of
  /// the fsync policy. Throws IoError after exhausted retries.
  void sync();

  // ----- reading ---------------------------------------------------------
  /// Materializes everything appended so far as a validated Log.
  Log load() const;

  std::size_t num_records() const noexcept { return num_records_; }
  std::size_t num_segments() const noexcept { return segments_.size(); }
  const std::filesystem::path& directory() const noexcept { return dir_; }
  /// What the open() that produced this store had to recover.
  const RecoveryReport& recovery_report() const noexcept { return recovery_; }
  /// True after a structural write failure (failed roll or unrecoverable
  /// tail): every further append throws; reopen the directory to recover.
  bool failed() const noexcept { return poisoned_; }

  /// Recovers a poisoned (or healthy) store by re-running open() on its
  /// own directory — same options and IO seam, but with quarantine
  /// recovery forced on so a corrupt suffix is set aside instead of
  /// re-poisoning — and replacing *this with the result. On success the
  /// store is un-poisoned, writer state is rebuilt from what is durably
  /// on disk, and the returned report says what recovery found. Throws
  /// IoError (leaving *this untouched) when the directory is still
  /// unreadable — the caller retries later. This is wfqd's degraded-mode
  /// healing path: acked records are durable before they are acked, so
  /// reopening loses nothing a client was told was applied.
  RecoveryReport reopen_in_place();

 private:
  LogStore() = default;

  void append_record(Wid wid, std::string_view activity, const AttrMap& in,
                     const AttrMap& out, Interner& interner);
  void roll_segment();
  void write_manifest();
  void write_all(std::string_view data, std::size_t& off);
  void recover_tail_to(std::uintmax_t good_bytes) noexcept;
  /// Runs `fn`, retrying IoError up to max_io_retries times with
  /// exponential backoff; rethrows a structured IoError on exhaustion.
  template <typename Fn>
  void with_retries(const char* what, Fn&& fn);
  std::filesystem::path segment_path(std::size_t index) const;

  std::filesystem::path dir_;
  Options options_;
  std::shared_ptr<FileIo> io_;
  std::vector<std::string> segments_;  // file names, in MANIFEST order
  WriteFilePtr tail_;
  std::uintmax_t tail_bytes_ = 0;  // bytes accepted into the tail segment
  std::size_t tail_records_ = 0;   // records in the open tail segment
  std::size_t records_since_sync_ = 0;
  std::size_t num_records_ = 0;
  bool poisoned_ = false;
  RecoveryReport recovery_;
  std::unordered_map<Wid, IsLsn> next_is_lsn_;  // 0 = completed
  Wid next_wid_ = 1;
};

}  // namespace wflog
