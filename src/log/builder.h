#pragma once

// LogBuilder: the ergonomic way to assemble a well-formed log by hand or
// from a workflow engine. The builder assigns lsns in call order, tracks
// per-instance is-lsns, and inserts the START/END sentinel records, so the
// resulting log satisfies Definition 2 by construction (build() still
// validates as a safety net).

#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "log/log.h"

namespace wflog {

/// Attribute bindings by name, convenient for call sites:
/// {{"balance", Value{1000}}, {"referState", Value{"start"}}}.
using NamedAttrs = std::vector<std::pair<std::string_view, Value>>;

class LogBuilder {
 public:
  LogBuilder() = default;

  /// Starts a new workflow instance: emits its START record and returns the
  /// fresh wid (1, 2, 3, ... in begin order).
  Wid begin_instance();

  /// Starts an instance with a caller-chosen wid (must be unused). Useful
  /// when reconstructing a published log verbatim.
  Wid begin_instance(Wid wid);

  /// Emits one activity record for an open instance.
  /// Precondition: `wid` was returned by begin_instance and end_instance
  /// has not been called for it.
  void append(Wid wid, std::string_view activity, const NamedAttrs& in = {},
              const NamedAttrs& out = {});

  /// Emits the END record and closes the instance. Instances left open are
  /// legal (Definition 2 allows incomplete instances).
  void end_instance(Wid wid);

  bool is_open(Wid wid) const {
    auto it = next_is_lsn_.find(wid);
    return it != next_is_lsn_.end() && it->second != 0;
  }

  std::size_t size() const noexcept { return records_.size(); }

  /// Finalizes into a validated Log. The builder is left empty.
  Log build();

  /// Finalizes without re-validating (the builder maintains Definition 2 by
  /// construction; use in hot workload-generation paths).
  Log build_unchecked();

  /// Access to the interner while building, e.g. to pre-intern an alphabet.
  Interner& interner() noexcept { return interner_; }

 private:
  AttrMap make_map(const NamedAttrs& attrs);
  void emit(Wid wid, Symbol activity, AttrMap in, AttrMap out);

  Interner interner_;
  std::vector<LogRecord> records_;
  std::unordered_map<Wid, IsLsn> next_is_lsn_;  // 0 = instance ended
  Wid next_wid_ = 1;
};

}  // namespace wflog
