#include "log/io_csv.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/text.h"

namespace wflog {
namespace {

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw IoError("CSV: invalid " + std::string(what) + ": '" +
                  std::string(s) + "'");
  }
  return v;
}

}  // namespace

std::string attr_map_to_string(const AttrMap& map, const Interner& interner) {
  std::string out;
  bool first = true;
  for (const AttrEntry& e : map) {
    if (!first) out += "; ";
    first = false;
    out += interner.name(e.attr);
    out += '=';
    out += e.value.to_string();
  }
  return out;
}

AttrMap parse_attr_map(std::string_view text, Interner& interner) {
  AttrMap map;
  text = trim(text);
  if (text.empty() || text == "-") return map;
  for (std::string_view entry : split_quoted(text, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      throw IoError("attribute map entry missing '=': '" +
                    std::string(entry) + "'");
    }
    const std::string_view name = trim(entry.substr(0, eq));
    if (!is_identifier(name)) {
      throw IoError("invalid attribute name: '" + std::string(name) + "'");
    }
    map.set(interner.intern(name), Value::parse(trim(entry.substr(eq + 1))));
  }
  return map;
}

void write_csv(const Log& log, std::ostream& out) {
  out << "lsn,wid,is_lsn,activity,input,output\n";
  const Interner& in = log.interner();
  for (const LogRecord& l : log) {
    out << l.lsn << ',' << l.wid << ',' << l.is_lsn << ','
        << csv_escape(in.name(l.activity)) << ','
        << csv_escape(attr_map_to_string(l.in, in)) << ','
        << csv_escape(attr_map_to_string(l.out, in)) << '\n';
  }
}

std::string to_csv(const Log& log) {
  std::ostringstream os;
  write_csv(log, os);
  return os.str();
}

Log read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw IoError("CSV: empty input");
  // Tolerate a UTF-8 BOM and validate the header.
  if (line.starts_with("\xef\xbb\xbf")) line.erase(0, 3);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "lsn,wid,is_lsn,activity,input,output") {
    throw IoError("CSV: unexpected header: '" + line + "'");
  }

  Interner interner;
  std::vector<LogRecord> records;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    std::vector<std::string> fields = csv_parse_line(line);
    if (fields.size() != 6) {
      throw IoError("CSV line " + std::to_string(lineno) + ": expected 6 " +
                    "fields, got " + std::to_string(fields.size()));
    }
    LogRecord l;
    l.lsn = parse_u64(fields[0], "lsn");
    l.wid = parse_u64(fields[1], "wid");
    l.is_lsn = static_cast<IsLsn>(parse_u64(fields[2], "is_lsn"));
    if (!is_identifier(fields[3])) {
      throw IoError("CSV line " + std::to_string(lineno) +
                    ": invalid activity name '" + fields[3] + "'");
    }
    l.activity = interner.intern(fields[3]);
    l.in = parse_attr_map(fields[4], interner);
    l.out = parse_attr_map(fields[5], interner);
    records.push_back(std::move(l));
  }
  return Log::from_records(std::move(records), std::move(interner));
}

Log csv_to_log(const std::string& text) {
  std::istringstream is(text);
  return read_csv(is);
}

}  // namespace wflog
