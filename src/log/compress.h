#pragma once

// DEFLATE-style block compression for the v2 segment format (log/segfmt.h).
//
// A hand-rolled RFC 1951 subset: the compressor emits one fixed-Huffman
// deflate block (LZ77 over a 32 KiB window, hash-chain matching, greedy
// parse) or falls back to a stored block when the data does not shrink;
// the inflater accepts stored (BTYPE 00) and fixed-Huffman (BTYPE 01)
// blocks — everything this writer can produce — and treats anything else
// as corruption. In the spirit of a strict streaming inflater, every
// failure mode is an explicit error, never silent truncation:
//
//   * truncated input (bits missing mid-symbol, mid-stored-block),
//   * invalid symbols (reserved length/distance codes),
//   * back-references reaching before the start of the output,
//   * output disagreeing with the caller-declared uncompressed size,
//   * trailing garbage after the final block.
//
// The segment format frames each compressed block with its own CRC-32, so
// inflate() is only reached with bytes that already checksum clean; the
// strict decoder is the second line of defense (and the first one for a
// doctored file whose CRC was recomputed).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace wflog {

/// Thrown by inflate() on any malformed stream. Derived from IoError so
/// store recovery treats undecodable blocks exactly like CRC mismatches.
class InflateError : public IoError {
 public:
  using IoError::IoError;
};

/// Compresses `data` into a self-terminating deflate stream (one final
/// block, fixed-Huffman or stored — whichever is smaller). Deterministic:
/// equal input yields equal output.
std::string deflate_compress(std::string_view data);

/// Decompresses a stream produced by deflate_compress (any conforming
/// stored/fixed-Huffman deflate stream, in fact). `expected_size` is the
/// caller-known uncompressed size (from the block header); a stream that
/// inflates to any other size, or leaves undecoded trailing bytes, throws
/// InflateError.
std::string deflate_decompress(std::string_view data,
                               std::size_t expected_size);

}  // namespace wflog
