#include "log/record.h"

namespace wflog {

void AttrMap::set(Symbol attr, Value value) {
  for (AttrEntry& e : entries_) {
    if (e.attr == attr) {
      e.value = std::move(value);
      return;
    }
  }
  entries_.push_back(AttrEntry{attr, std::move(value)});
}

const Value* AttrMap::get(Symbol attr) const noexcept {
  for (const AttrEntry& e : entries_) {
    if (e.attr == attr) return &e.value;
  }
  return nullptr;
}

}  // namespace wflog
