#pragma once

// JSON Lines serialization: one JSON object per log record, e.g.
//   {"lsn":4,"wid":1,"is_lsn":3,"activity":"CheckIn",
//    "in":{"referId":"034d1","balance":1000},"out":{"referState":"active"}}
//
// Values are typed JSON scalars (null / number / bool / string). This is the
// interchange format for feeding logs to external tooling; the parser
// accepts any key order and skips unknown keys.

#include <iosfwd>
#include <string>

#include "log/log.h"

namespace wflog {

void write_jsonl(const Log& log, std::ostream& out);
std::string to_jsonl(const Log& log);

/// Single-record framing, used by the streaming LogStore: writes one JSON
/// object (newline-terminated) / parses one line. parse throws IoError.
void write_jsonl_record(std::ostream& out, const LogRecord& record,
                        const Interner& interner);
LogRecord parse_jsonl_record(std::string_view line, Interner& interner);

/// Checksummed store framing: "crc32hex8 SP json-object LF". The CRC-32
/// covers the JSON body, so recovery detects torn or bit-rotted lines
/// instead of parsing garbage. parse_store_line accepts both framings
/// (plain JSON lines predate checksumming) and throws IoError on a
/// checksum mismatch or malformed body; the line must not include the
/// trailing newline.
std::string to_store_line(const LogRecord& record, const Interner& interner);
LogRecord parse_store_line(std::string_view line, Interner& interner);

/// Parses JSONL and validates the resulting log. Throws IoError /
/// ValidationError.
Log read_jsonl(std::istream& in);
Log jsonl_to_log(const std::string& text);

}  // namespace wflog
