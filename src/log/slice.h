#pragma once

// Sub-log projection. Analysts rarely query a whole multi-year log; these
// utilities carve Definition-2-conformant sub-logs out of a larger one:
//
//  * instance filtering   — keep whole workflow instances (wid predicate,
//                           explicit id set, or random sample);
//  * prefix truncation    — "the log as of lsn N", keeping each instance's
//                           record prefix (how a log looks mid-execution).
//
// All functions renumber lsns to 1..|L'| (restoring condition 1 of
// Definition 2) while preserving wid and is-lsn values, and return
// validated logs.

#include <functional>
#include <span>

#include "log/log.h"

namespace wflog {

/// Keeps exactly the instances for which `keep(wid)` is true.
/// Throws ValidationError if the result would be empty (logs are nonempty).
Log filter_instances(const Log& log, const std::function<bool(Wid)>& keep);

/// Keeps the listed instances (order/duplicates ignored).
Log keep_instances(const Log& log, std::span<const Wid> wids);

/// Keeps a random `fraction` of instances (at least one), seeded.
Log sample_instances(const Log& log, double fraction, std::uint64_t seed);

/// The log "as of" global sequence number `max_lsn`: all records with
/// lsn <= max_lsn. Every instance keeps a prefix of its records, so the
/// result is well-formed (instances whose END falls beyond the cut simply
/// become incomplete). Precondition: 1 <= max_lsn.
Log truncate_at(const Log& log, Lsn max_lsn);

/// Keeps instances whose record count (including sentinels) lies in
/// [min_len, max_len].
Log filter_by_length(const Log& log, std::size_t min_len,
                     std::size_t max_len);

/// Sub-log of shard `shard` out of `num_shards` under the stable wid hash
/// (core/shard.h's shard_of_wid — the same assignment the scatter/gather
/// engine uses, so a materialized shard log answers exactly that shard's
/// slice of any query). Preconditions: shard < num_shards, num_shards >= 1.
/// Throws ValidationError if the shard is empty (logs are nonempty).
Log shard_instances(const Log& log, std::size_t shard,
                    std::size_t num_shards);

}  // namespace wflog
