#include "log/stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace wflog {

LogStats compute_stats(const Log& log) {
  LogStats s;
  s.num_records = log.size();

  std::unordered_map<Wid, std::size_t> lengths;
  std::unordered_map<Symbol, std::size_t> counts;
  for (const LogRecord& l : log) {
    ++lengths[l.wid];
    ++counts[l.activity];
    if (l.activity == log.end_symbol()) ++s.num_completed;
  }

  s.num_instances = lengths.size();
  s.num_activities = counts.size();
  if (!lengths.empty()) {
    s.min_instance_len = SIZE_MAX;
    std::size_t total = 0;
    for (const auto& [wid, len] : lengths) {
      s.min_instance_len = std::min(s.min_instance_len, len);
      s.max_instance_len = std::max(s.max_instance_len, len);
      total += len;
    }
    s.mean_instance_len =
        static_cast<double>(total) / static_cast<double>(lengths.size());
  }

  s.histogram.reserve(counts.size());
  for (const auto& [sym, count] : counts) {
    s.histogram.push_back(
        ActivityCount{std::string(log.activity_name(sym)), count});
  }
  std::sort(s.histogram.begin(), s.histogram.end(),
            [](const ActivityCount& a, const ActivityCount& b) {
              return a.count != b.count ? a.count > b.count : a.name < b.name;
            });
  return s;
}

std::string LogStats::to_string() const {
  std::ostringstream os;
  os << "records: " << num_records << "\n"
     << "instances: " << num_instances << " (" << num_completed
     << " completed)\n"
     << "distinct activities: " << num_activities << "\n"
     << "instance length: min " << min_instance_len << ", mean "
     << mean_instance_len << ", max " << max_instance_len << "\n"
     << "activity histogram:\n";
  for (const ActivityCount& ac : histogram) {
    os << "  " << ac.name << ": " << ac.count << "\n";
  }
  return os.str();
}

}  // namespace wflog
