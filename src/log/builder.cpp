#include "log/builder.h"

#include "common/error.h"

namespace wflog {

AttrMap LogBuilder::make_map(const NamedAttrs& attrs) {
  AttrMap map;
  for (const auto& [name, value] : attrs) {
    map.set(interner_.intern(name), value);
  }
  return map;
}

void LogBuilder::emit(Wid wid, Symbol activity, AttrMap in, AttrMap out) {
  LogRecord l;
  l.lsn = static_cast<Lsn>(records_.size() + 1);
  l.wid = wid;
  l.is_lsn = next_is_lsn_.at(wid);
  l.activity = activity;
  l.in = std::move(in);
  l.out = std::move(out);
  records_.push_back(std::move(l));
  ++next_is_lsn_.at(wid);
}

Wid LogBuilder::begin_instance() {
  while (next_is_lsn_.contains(next_wid_)) ++next_wid_;
  return begin_instance(next_wid_);
}

Wid LogBuilder::begin_instance(Wid wid) {
  auto [it, inserted] = next_is_lsn_.emplace(wid, 1);
  if (!inserted) {
    throw Error("LogBuilder: instance " + std::to_string(wid) +
                " already exists");
  }
  emit(wid, interner_.intern(kStartActivity), {}, {});
  return wid;
}

void LogBuilder::append(Wid wid, std::string_view activity,
                        const NamedAttrs& in, const NamedAttrs& out) {
  auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogBuilder: instance " + std::to_string(wid) +
                " is not open");
  }
  if (activity == kStartActivity || activity == kEndActivity) {
    throw Error("LogBuilder: activity name '" + std::string(activity) +
                "' is reserved; use begin_instance/end_instance");
  }
  emit(wid, interner_.intern(activity), make_map(in), make_map(out));
}

void LogBuilder::end_instance(Wid wid) {
  auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogBuilder: instance " + std::to_string(wid) +
                " is not open");
  }
  emit(wid, interner_.intern(kEndActivity), {}, {});
  it->second = 0;  // mark ended
}

Log LogBuilder::build() {
  Log log = Log::from_records(std::move(records_), std::move(interner_));
  *this = LogBuilder{};
  return log;
}

Log LogBuilder::build_unchecked() {
  Log log =
      Log::from_records_unchecked(std::move(records_), std::move(interner_));
  *this = LogBuilder{};
  return log;
}

}  // namespace wflog
