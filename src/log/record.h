#pragma once

// Log records (Definition 1 of the paper): the fundamental unit of a
// workflow log. A record is (lsn, wid, is-lsn, t, αin, αout) — the global
// sequence number, the owning workflow instance, the position within that
// instance, the activity name, and the attribute maps the activity read
// (αin) and wrote (αout).

#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace wflog {

/// One attribute binding inside an input/output map.
struct AttrEntry {
  Symbol attr = kNoSymbol;
  Value value;

  bool operator==(const AttrEntry& other) const {
    return attr == other.attr && value == other.value;
  }
};

/// A finite map A -> D ("map" in the paper). Attribute maps are tiny (a
/// handful of entries), so a flat vector with linear lookup beats any
/// tree/hash container; insertion order is preserved for faithful
/// round-tripping.
class AttrMap {
 public:
  AttrMap() = default;
  AttrMap(std::initializer_list<AttrEntry> init) : entries_(init) {}

  /// Sets attr to value, overwriting an existing binding.
  void set(Symbol attr, Value value);

  /// Returns the bound value or nullptr when the attribute is undefined (⊥).
  const Value* get(Symbol attr) const noexcept;

  bool contains(Symbol attr) const noexcept { return get(attr) != nullptr; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  bool operator==(const AttrMap& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<AttrEntry> entries_;
};

/// A log record. Plain aggregate: all invariants that relate records to one
/// another (lsn bijection, consecutive is-lsn, ...) belong to Log
/// (Definition 2), not to the individual record.
struct LogRecord {
  Lsn lsn = 0;
  Wid wid = 0;
  IsLsn is_lsn = 0;
  Symbol activity = kNoSymbol;
  AttrMap in;
  AttrMap out;
};

/// Accessor functions mirroring the paper's notation lsn(l), wid(l),
/// is-lsn(l), act(l), αin(l), αout(l).
inline Lsn lsn(const LogRecord& l) noexcept { return l.lsn; }
inline Wid wid(const LogRecord& l) noexcept { return l.wid; }
inline IsLsn is_lsn(const LogRecord& l) noexcept { return l.is_lsn; }
inline Symbol act(const LogRecord& l) noexcept { return l.activity; }
inline const AttrMap& alpha_in(const LogRecord& l) noexcept { return l.in; }
inline const AttrMap& alpha_out(const LogRecord& l) noexcept { return l.out; }

/// Names of the two sentinel activities. Every instance begins with a START
/// record (is-lsn = 1) and a completed instance ends with an END record.
inline constexpr std::string_view kStartActivity = "START";
inline constexpr std::string_view kEndActivity = "END";

}  // namespace wflog
