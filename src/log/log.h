#pragma once

// The Log type (Definition 2): a finite set of log records whose lsns form
// a bijection with 1..|L|, where every instance starts with START, has
// consecutive is-lsns, and ends (if completed) with END.
//
// A Log owns its records in ascending lsn order (so records_[i].lsn == i+1)
// together with the Interner that maps activity/attribute names to the
// Symbols stored in records. Logs are immutable after construction: build
// them with LogBuilder or the deserializers, both of which validate.

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "log/record.h"

namespace wflog {

class Log {
 public:
  /// Validates `records` against Definition 2 and constructs the log.
  /// Records may arrive in any order; they are sorted by lsn. Throws
  /// ValidationError on any violation.
  static Log from_records(std::vector<LogRecord> records, Interner interner);

  /// Constructs without validation. For internal use by generators that
  /// emit well-formed logs by construction (the simulator) and by benches
  /// that must not pay validation cost; callers assert conformance.
  static Log from_records_unchecked(std::vector<LogRecord> records,
                                    Interner interner);

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Record with global sequence number `n` (1-based, Definition 2 cond 1).
  /// Precondition: 1 <= n <= size().
  const LogRecord& record(Lsn n) const { return records_.at(n - 1); }

  std::span<const LogRecord> records() const noexcept { return records_; }
  auto begin() const noexcept { return records_.begin(); }
  auto end() const noexcept { return records_.end(); }

  const Interner& interner() const noexcept { return *interner_; }

  /// Interner access for building patterns against this log's alphabet.
  /// Returns kNoSymbol for names never seen in the log.
  Symbol activity_symbol(std::string_view name) const {
    return interner_->find(name);
  }
  std::string_view activity_name(Symbol sym) const {
    return interner_->name(sym);
  }

  /// Symbols of the START / END sentinels (kNoSymbol if absent, e.g. in an
  /// empty log — impossible for well-formed logs, which contain >= 1 START).
  Symbol start_symbol() const noexcept { return start_sym_; }
  Symbol end_symbol() const noexcept { return end_sym_; }

  /// Distinct workflow instance ids in order of first appearance.
  const std::vector<Wid>& wids() const noexcept { return wids_; }

 private:
  Log(std::vector<LogRecord> records, Interner interner);

  std::vector<LogRecord> records_;
  // unique_ptr keeps Symbols' string_views stable across Log moves.
  std::unique_ptr<Interner> interner_;
  std::vector<Wid> wids_;
  Symbol start_sym_ = kNoSymbol;
  Symbol end_sym_ = kNoSymbol;
};

}  // namespace wflog
