#include "log/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/error.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& what, const fs::path& path) {
  throw IoError(what + " '" + path.string() + "': " + std::strerror(errno));
}

/// POSIX fd-backed file: write() is a raw ::write (naturally short-write
/// capable), flush() is a no-op (no user-space buffer), sync() is fsync.
class PosixWriteFile final : public WriteFile {
 public:
  PosixWriteFile(int fd, fs::path path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWriteFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t write(std::string_view data) override {
    if (data.empty()) return 0;
    const ::ssize_t n = ::write(fd_, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) return 0;  // retryable, no progress
      throw_errno("write failed on", path_);
    }
    return static_cast<std::size_t>(n);
  }

  void flush() override {}  // unbuffered

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno("fsync failed on", path_);
  }

  void close() override {
    if (fd_ < 0) return;
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) throw_errno("close failed on", path_);
  }

 private:
  int fd_;
  fs::path path_;
};

class RealFileIo final : public FileIo {
 public:
  WriteFilePtr open_append(const fs::path& path) override {
    return open_with(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  WriteFilePtr open_trunc(const fs::path& path) override {
    return open_with(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  void rename(const fs::path& from, const fs::path& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      throw IoError("rename '" + from.string() + "' -> '" + to.string() +
                    "' failed: " + ec.message());
    }
  }

  void truncate(const fs::path& path, std::uintmax_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      throw IoError("truncate '" + path.string() +
                    "' failed: " + ec.message());
    }
  }

  void remove(const fs::path& path) override {
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) {
      throw IoError("remove '" + path.string() + "' failed: " + ec.message());
    }
  }

  void sync_dir(const fs::path& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno("cannot open directory", dir);
    if (::fsync(fd) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fsync failed on directory", dir);
    }
    if (::close(fd) != 0) throw_errno("close failed on directory", dir);
  }

 private:
  static WriteFilePtr open_with(const fs::path& path, int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) throw_errno("cannot open", path);
    return std::make_unique<PosixWriteFile>(fd, path);
  }
};

std::uintmax_t size_or_zero(const fs::path& path) {
  std::error_code ec;
  const std::uintmax_t n = fs::file_size(path, ec);
  return ec ? 0 : n;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("FaultIo: cannot read back '" + path.string() + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

void spill(const fs::path& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("FaultIo: cannot restore '" + path.string() + "'");
}

}  // namespace

std::shared_ptr<FileIo> real_file_io() {
  static const std::shared_ptr<FileIo> io = std::make_shared<RealFileIo>();
  return io;
}

// ----- FaultIo -------------------------------------------------------------

/// Forwards to the base handle, routing every call through FaultIo's op
/// counter; records fsync high-water marks for the crash-loss model.
class FaultWriteFile final : public WriteFile {
 public:
  FaultWriteFile(FaultIo* io, WriteFilePtr base, fs::path path)
      : io_(io), base_(std::move(base)), path_(std::move(path)) {}

  std::size_t write(std::string_view data) override {
    const bool short_write = io_->on_op("write");
    if (short_write) {
      const std::size_t half = data.size() / 2;
      std::size_t done = 0;
      while (done < half) {
        done += base_->write(data.substr(done, half - done));
      }
      return half;
    }
    return base_->write(data);
  }

  void flush() override {
    io_->on_op("flush");
    base_->flush();
  }

  void sync() override {
    io_->on_op("sync");
    base_->sync();
    io_->note_synced(path_);
  }

  void close() override {
    io_->on_op("close");
    base_->close();
  }

 private:
  FaultIo* io_;
  WriteFilePtr base_;
  fs::path path_;
};

FaultIo::FaultIo(std::shared_ptr<FileIo> base)
    : base_(base != nullptr ? std::move(base) : real_file_io()) {}

bool FaultIo::on_op(const char* what) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    throw IoError(std::string("FaultIo: ") + what + " after simulated crash");
  }
  ++ops_;
  trace_.emplace_back(what);
  if (fault_.at_op == 0 || ops_ < fault_.at_op) return false;
  switch (fault_.kind) {
    case Fault::Kind::kError: {
      const bool sticky = fault_.count == Fault::kSticky;
      if (sticky || ops_ < fault_.at_op + fault_.count) {
        throw IoError(std::string("FaultIo: injected ") + what +
                      " error (op " + std::to_string(ops_) + ")");
      }
      return false;
    }
    case Fault::Kind::kShortWrite:
      return ops_ == fault_.at_op;
    case Fault::Kind::kCrash:
      if (ops_ == fault_.at_op) {
        apply_crash_loss();
        crashed_ = true;
        throw IoError(std::string("FaultIo: simulated crash at ") + what +
                      " (op " + std::to_string(ops_) + ")");
      }
      return false;
  }
  return false;
}

void FaultIo::apply_crash_loss() {
  for (const auto& [path, durable] : durable_) {
    if (!fs::exists(path)) continue;
    const std::uintmax_t size = size_or_zero(path);
    if (size <= durable) continue;
    std::uintmax_t keep = size;
    switch (fault_.loss) {
      case CrashLoss::kKeepAll:
        continue;
      case CrashLoss::kDropUnsynced:
        keep = durable;
        break;
      case CrashLoss::kTornHalf:
        keep = durable + (size - durable) / 2;
        break;
    }
    base_->truncate(path, keep);
  }
  // Directory entries: a rename whose parent directory was never fsynced
  // may be undone by power loss — the on-disk directory still holds the
  // pre-rename state. kKeepAll (process crash) keeps the kernel's view.
  if (fault_.loss != CrashLoss::kKeepAll) {
    for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
         ++it) {
      if (fs::exists(it->to)) {
        spill(it->from, slurp(it->to));
      }
      if (it->to_existed) {
        spill(it->to, it->old_to_content);
      } else {
        base_->remove(it->to);
      }
    }
  }
  pending_renames_.clear();
}

void FaultIo::note_synced(const fs::path& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  durable_[path] = size_or_zero(path);
}

WriteFilePtr FaultIo::open_append(const fs::path& path) {
  on_op("open");
  WriteFilePtr base = base_->open_append(path);
  // A freshly tracked file's durable prefix is whatever already exists
  // (created by a previous, synced life of the store).
  {
    const std::lock_guard<std::mutex> lock(mu_);
    durable_.try_emplace(path, size_or_zero(path));
  }
  return std::make_unique<FaultWriteFile>(this, std::move(base), path);
}

WriteFilePtr FaultIo::open_trunc(const fs::path& path) {
  on_op("open");
  WriteFilePtr base = base_->open_trunc(path);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    durable_[path] = 0;
  }
  return std::make_unique<FaultWriteFile>(this, std::move(base), path);
}

void FaultIo::rename(const fs::path& from, const fs::path& to) {
  on_op("rename");
  PendingRename pending;
  pending.from = from;
  pending.to = to;
  pending.to_existed = fs::exists(to);
  if (pending.to_existed) pending.old_to_content = slurp(to);
  base_->rename(from, to);
  const std::lock_guard<std::mutex> lock(mu_);
  pending_renames_.push_back(std::move(pending));
  const auto it = durable_.find(from);
  if (it != durable_.end()) {
    durable_[to] = it->second;
    durable_.erase(it);
  }
}

void FaultIo::truncate(const fs::path& path, std::uintmax_t size) {
  on_op("truncate");
  base_->truncate(path, size);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = durable_.find(path);
  if (it != durable_.end() && it->second > size) it->second = size;
}

void FaultIo::remove(const fs::path& path) {
  on_op("remove");
  base_->remove(path);
  const std::lock_guard<std::mutex> lock(mu_);
  durable_.erase(path);
}

void FaultIo::sync_dir(const fs::path& dir) {
  on_op("sync_dir");
  base_->sync_dir(dir);
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(pending_renames_, [&](const PendingRename& pending) {
    return pending.to.parent_path() == dir;
  });
}

}  // namespace wflog
