#include "log/index.h"

#include <algorithm>

namespace wflog {
namespace {

const std::vector<const LogRecord*> kEmptyInstance;
const std::vector<IsLsn> kEmptyOccurrences;

}  // namespace

LogIndex::LogIndex(const Log& log) : log_(&log) {
  for (const LogRecord& l : log) {
    InstanceData& inst = instances_[l.wid];
    // Records arrive in lsn order; within an instance that is also is-lsn
    // order (Definition 2, condition 3), so push_back keeps both arrays
    // sorted.
    inst.records.push_back(&l);
    inst.by_activity[l.activity].push_back(l.is_lsn);
    auto [it, inserted] = counts_.emplace(l.activity, 1);
    if (!inserted) {
      ++it->second;
    } else {
      activities_.push_back(l.activity);
    }
  }
  std::sort(activities_.begin(), activities_.end());
}

const std::vector<const LogRecord*>& LogIndex::instance(Wid wid) const {
  auto it = instances_.find(wid);
  return it == instances_.end() ? kEmptyInstance : it->second.records;
}

const std::vector<IsLsn>& LogIndex::occurrences(Wid wid,
                                                Symbol activity) const {
  auto it = instances_.find(wid);
  if (it == instances_.end()) return kEmptyOccurrences;
  auto jt = it->second.by_activity.find(activity);
  return jt == it->second.by_activity.end() ? kEmptyOccurrences : jt->second;
}

std::vector<IsLsn> LogIndex::non_occurrences(Wid wid, Symbol activity) const {
  std::vector<IsLsn> out;
  const auto& recs = instance(wid);
  out.reserve(recs.size());
  for (const LogRecord* l : recs) {
    if (l->activity != activity) out.push_back(l->is_lsn);
  }
  return out;
}

std::size_t LogIndex::total_count(Symbol activity) const {
  auto it = counts_.find(activity);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace wflog
