#include "log/segfmt.h"

#include <algorithm>
#include <set>

#include "common/crc32.h"
#include "common/error.h"
#include "common/text.h"
#include "log/compress.h"
#include "log/io_jsonl.h"
#include "log/wire.h"

namespace wflog {
namespace {

struct BlockHeader {
  std::uint32_t codec = 0;
  std::uint32_t compressed_size = 0;
  std::uint32_t uncompressed_size = 0;
  std::uint32_t record_count = 0;
  std::uint64_t first_lsn = 0;
  std::uint32_t payload_crc = 0;
};

std::string encode_block_header(const BlockHeader& h) {
  std::string out;
  out.reserve(kSegV2BlockHeaderSize);
  wire::put_u32(out, kSegV2BlockMagic);
  wire::put_u32(out, h.codec);
  wire::put_u32(out, h.compressed_size);
  wire::put_u32(out, h.uncompressed_size);
  wire::put_u32(out, h.record_count);
  wire::put_u64(out, h.first_lsn);
  wire::put_u32(out, h.payload_crc);
  wire::put_u32(out, crc32(out));  // header_crc over the 32 bytes above
  return out;
}

/// Parses a block header (>= 36 bytes available). Returns nullopt when the
/// magic or header CRC does not check out.
std::optional<BlockHeader> decode_block_header(std::string_view bytes) {
  wire::Reader r(bytes.substr(0, kSegV2BlockHeaderSize));
  const std::uint32_t magic = r.u32();
  BlockHeader h;
  h.codec = r.u32();
  h.compressed_size = r.u32();
  h.uncompressed_size = r.u32();
  h.record_count = r.u32();
  h.first_lsn = r.u64();
  h.payload_crc = r.u32();
  const std::uint32_t header_crc = r.u32();
  if (magic != kSegV2BlockMagic ||
      header_crc != crc32(bytes.substr(0, kSegV2BlockHeaderSize - 4))) {
    return std::nullopt;
  }
  return h;
}

std::string decode_payload(std::string_view compressed, std::uint32_t codec,
                           std::uint32_t uncompressed_size) {
  switch (static_cast<BlockCodec>(codec)) {
    case BlockCodec::kRaw:
      if (compressed.size() != uncompressed_size) {
        throw IoError("segfmt: raw block size mismatch");
      }
      return std::string(compressed);
    case BlockCodec::kDeflate:
      return deflate_decompress(compressed, uncompressed_size);
  }
  throw IoError("segfmt: unknown block codec " + std::to_string(codec));
}

}  // namespace

// ----- BlockBuilder ---------------------------------------------------------

void BlockBuilder::add(const LogRecord& record, std::string_view activity_name,
                       std::string_view line) {
  PendingRecord meta;
  meta.wid = record.wid;
  meta.lsn = record.lsn;
  meta.activity = std::string(activity_name);
  meta.line_bytes = static_cast<std::uint32_t>(line.size() + 1);
  payload_.append(line);
  payload_.push_back('\n');
  records_.push_back(std::move(meta));
}

void BlockBuilder::remove_last() {
  if (records_.empty()) return;
  payload_.resize(payload_.size() - records_.back().line_bytes);
  records_.pop_back();
}

void BlockBuilder::clear() {
  payload_.clear();
  records_.clear();
}

EncodedBlock BlockBuilder::encode(std::uint64_t file_offset) const {
  EncodedBlock out;
  BlockZone& z = out.zone;
  z.file_offset = file_offset;
  z.uncompressed_size = static_cast<std::uint32_t>(payload_.size());
  z.record_count = static_cast<std::uint32_t>(records_.size());
  z.wid_min = UINT64_MAX;
  z.lsn_min = UINT64_MAX;
  std::set<std::string_view> distinct;
  for (const PendingRecord& r : records_) {
    z.wid_min = std::min(z.wid_min, r.wid);
    z.wid_max = std::max(z.wid_max, r.wid);
    z.lsn_min = std::min(z.lsn_min, r.lsn);
    z.lsn_max = std::max(z.lsn_max, r.lsn);
    distinct.insert(r.activity);
  }
  z.bloom = ActivityBloom::sized_for(distinct.size());
  for (const std::string_view a : distinct) z.bloom.add(a);

  std::string compressed = deflate_compress(payload_);
  if (compressed.size() >= payload_.size()) {
    z.codec = static_cast<std::uint32_t>(BlockCodec::kRaw);
    compressed = payload_;
  } else {
    z.codec = static_cast<std::uint32_t>(BlockCodec::kDeflate);
  }
  z.compressed_size = static_cast<std::uint32_t>(compressed.size());
  z.payload_crc = crc32(compressed);

  BlockHeader h;
  h.codec = z.codec;
  h.compressed_size = z.compressed_size;
  h.uncompressed_size = z.uncompressed_size;
  h.record_count = z.record_count;
  h.first_lsn = records_.front().lsn;
  h.payload_crc = z.payload_crc;
  out.bytes = encode_block_header(h);
  out.bytes += compressed;
  return out;
}

// ----- scanning -------------------------------------------------------------

BlockScan scan_v2_blocks(std::string_view file) {
  BlockScan scan;
  // The file magic itself can be torn by a crash between segment creation
  // and the first durable byte.
  if (file.size() < kSegV2FileMagic.size()) {
    if (std::string_view(kSegV2FileMagic)
            .substr(0, file.size()) == file) {
      scan.torn = file.size() > 0;
      return scan;
    }
    scan.corrupt_reason = "bad v2 segment file magic";
    return scan;
  }
  if (file.substr(0, kSegV2FileMagic.size()) != kSegV2FileMagic) {
    scan.corrupt_reason = "bad v2 segment file magic";
    return scan;
  }
  std::size_t off = kSegV2FileMagic.size();
  scan.good_bytes = off;
  std::uint64_t records_so_far = 0;

  // Distinguishes an interrupted seal from corruption: block writes land
  // as byte prefixes, so any crash residue of >= header size parses as a
  // valid block header — EXCEPT the bytes of a partially written footer.
  // A footer body opens with this segment's total record count (u64) and
  // block count (u32); if the unparseable region fingerprints as exactly
  // that, it is a torn footer (truncate, recover block-by-block).
  // Anything else complete-but-invalid is corruption, as in v1 where a
  // newline-terminated line with a bad CRC is corruption, not tearing.
  const auto is_torn_footer = [&](std::string_view region) {
    if (region.size() < 12) return true;  // too short to judge: lenient
    wire::Reader r(region.substr(0, 12));
    return r.u64() == records_so_far &&
           r.u32() == static_cast<std::uint32_t>(scan.zones.size());
  };

  Interner scratch;
  while (off < file.size()) {
    const std::string_view rest = file.substr(off);
    if (rest.size() < kSegV2BlockHeaderSize) {
      // Too short to even hold a header: could be a partial block header
      // OR a partial footer — both are tears; neither can be judged.
      scan.torn = true;
      return scan;
    }
    const std::optional<BlockHeader> h = decode_block_header(rest);
    if (!h.has_value()) {
      if (is_torn_footer(rest)) {
        scan.torn = true;
      } else {
        scan.corrupt_reason = "invalid block header at byte " +
                              std::to_string(off);
      }
      return scan;
    }
    if (rest.size() - kSegV2BlockHeaderSize < h->compressed_size) {
      scan.torn = true;  // payload cut short
      return scan;
    }
    const std::string_view payload_bytes =
        rest.substr(kSegV2BlockHeaderSize, h->compressed_size);
    if (crc32(payload_bytes) != h->payload_crc) {
      scan.corrupt_reason = "block payload CRC mismatch at byte " +
                            std::to_string(off + kSegV2BlockHeaderSize);
      return scan;
    }
    std::string payload;
    try {
      payload = decode_payload(payload_bytes, h->codec, h->uncompressed_size);
    } catch (const IoError& e) {
      scan.corrupt_reason = "block at byte " + std::to_string(off) +
                            " does not decode: " + e.what();
      return scan;
    }

    // Rebuild the zone (wid/lsn bounds + bloom) from the decoded records.
    BlockBuilder rebuild;
    std::size_t pos = 0;
    bool parsed = true;
    std::size_t parsed_records = 0;
    while (pos < payload.size()) {
      std::size_t nl = payload.find('\n', pos);
      if (nl == std::string::npos) nl = payload.size();
      const std::string_view line = trim(
          std::string_view(payload).substr(pos, nl - pos));
      pos = nl + 1;
      if (line.empty()) continue;
      try {
        const LogRecord rec = parse_store_line(line, scratch);
        rebuild.add(rec, scratch.name(rec.activity), line);
        ++parsed_records;
      } catch (const IoError& e) {
        scan.corrupt_reason = "record in block at byte " +
                              std::to_string(off) +
                              " does not parse: " + e.what();
        parsed = false;
        break;
      }
    }
    if (!parsed) return scan;
    if (parsed_records != h->record_count) {
      scan.corrupt_reason =
          "block at byte " + std::to_string(off) + " declares " +
          std::to_string(h->record_count) + " records but holds " +
          std::to_string(parsed_records);
      return scan;
    }

    EncodedBlock encoded = rebuild.encode(off);
    // Keep the on-disk framing facts (codec/crc/sizes) rather than the
    // rebuilt ones — re-compression is not guaranteed byte-stable across
    // versions; the zone must describe the file as it is.
    encoded.zone.codec = h->codec;
    encoded.zone.compressed_size = h->compressed_size;
    encoded.zone.uncompressed_size = h->uncompressed_size;
    encoded.zone.payload_crc = h->payload_crc;
    scan.zones.push_back(std::move(encoded.zone));
    scan.payloads.push_back(std::move(payload));
    records_so_far += h->record_count;
    off += kSegV2BlockHeaderSize + h->compressed_size;
    scan.good_bytes = off;
  }
  return scan;
}

// ----- footer ---------------------------------------------------------------

std::string encode_v2_footer(const SegmentFooter& footer) {
  std::string body = footer.encode();
  std::string out;
  out.reserve(body.size() + kSegV2TrailerSize);
  const std::uint32_t body_crc = crc32(body);
  out += body;
  wire::put_u32(out, body_crc);
  wire::put_u32(out, static_cast<std::uint32_t>(body.size()));
  out += kSegV2FooterMagic;
  return out;
}

std::optional<FooterRead> try_read_v2_footer(std::string_view file) {
  if (file.size() < kSegV2FileMagic.size() + kSegV2TrailerSize) {
    return std::nullopt;
  }
  if (file.substr(file.size() - kSegV2FooterMagic.size()) !=
      kSegV2FooterMagic) {
    return std::nullopt;
  }
  wire::Reader trailer(
      file.substr(file.size() - kSegV2TrailerSize, 8));
  const std::uint32_t body_crc = trailer.u32();
  const std::uint32_t body_len = trailer.u32();
  const std::size_t trailer_start = file.size() - kSegV2TrailerSize;
  if (body_len > trailer_start - kSegV2FileMagic.size()) {
    return std::nullopt;
  }
  const std::size_t body_start = trailer_start - body_len;
  const std::string_view body = file.substr(body_start, body_len);
  if (crc32(body) != body_crc) return std::nullopt;
  FooterRead out;
  try {
    out.footer = SegmentFooter::decode(body);
  } catch (const IoError&) {
    return std::nullopt;
  }
  out.footer_start = body_start;

  // The zone table must exactly tile the block region: contiguous blocks
  // from the file magic to the footer body. A footer that disagrees with
  // the file it sits in is not trusted.
  std::size_t expect = kSegV2FileMagic.size();
  for (const BlockZone& z : out.footer.blocks) {
    if (z.file_offset != expect) return std::nullopt;
    expect += kSegV2BlockHeaderSize + z.compressed_size;
  }
  if (expect != body_start) return std::nullopt;
  return out;
}

std::string read_v2_block_payload(std::string_view file,
                                  const BlockZone& zone) {
  if (zone.file_offset > file.size() ||
      file.size() - zone.file_offset <
          kSegV2BlockHeaderSize + zone.compressed_size) {
    throw IoError("segfmt: block at byte " +
                  std::to_string(zone.file_offset) +
                  " extends past end of segment");
  }
  const std::string_view at = file.substr(zone.file_offset);
  const std::optional<BlockHeader> h = decode_block_header(at);
  if (!h.has_value()) {
    throw IoError("segfmt: bad block header at byte " +
                  std::to_string(zone.file_offset));
  }
  if (h->codec != zone.codec || h->compressed_size != zone.compressed_size ||
      h->uncompressed_size != zone.uncompressed_size ||
      h->payload_crc != zone.payload_crc) {
    throw IoError("segfmt: block header at byte " +
                  std::to_string(zone.file_offset) +
                  " disagrees with its zone map entry");
  }
  const std::string_view payload_bytes =
      at.substr(kSegV2BlockHeaderSize, h->compressed_size);
  if (crc32(payload_bytes) != h->payload_crc) {
    throw IoError("segfmt: block payload CRC mismatch at byte " +
                  std::to_string(zone.file_offset));
  }
  return decode_payload(payload_bytes, h->codec, h->uncompressed_size);
}

}  // namespace wflog
