#pragma once

// Descriptive statistics of a log: what the analyst sees first in the CLI
// and what the benches print to characterise their workloads.

#include <string>
#include <vector>

#include "log/log.h"

namespace wflog {

struct ActivityCount {
  std::string name;
  std::size_t count = 0;
};

struct LogStats {
  std::size_t num_records = 0;
  std::size_t num_instances = 0;
  std::size_t num_completed = 0;   // instances with an END record
  std::size_t num_activities = 0;  // distinct names incl. sentinels
  std::size_t min_instance_len = 0;
  std::size_t max_instance_len = 0;
  double mean_instance_len = 0.0;
  std::vector<ActivityCount> histogram;  // descending by count

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

LogStats compute_stats(const Log& log);

}  // namespace wflog
