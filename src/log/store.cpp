#include "log/store.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/text.h"
#include "log/io_jsonl.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kMagic = "wflog-store v1";

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06zu.jsonl", index);
  return buf;
}

}  // namespace

std::filesystem::path LogStore::segment_path(std::size_t index) const {
  return dir_ / segments_.at(index);
}

void LogStore::write_manifest() const {
  // Write-then-rename keeps the manifest atomic against crashes.
  const std::filesystem::path tmp = dir_ / "MANIFEST.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw IoError("LogStore: cannot write manifest in " + dir_.string());
    }
    out << kMagic << "\n";
    out << "records_per_segment=" << options_.records_per_segment << "\n";
    for (const std::string& seg : segments_) out << seg << "\n";
  }
  std::filesystem::rename(tmp, dir_ / kManifestName);
}

void LogStore::roll_segment() {
  WFLOG_TELEMETRY(t) { t->store_segment_rolls_total->inc(); }
  segments_.push_back(segment_name(segments_.size() + 1));
  write_manifest();
  tail_.close();
  tail_.open(segment_path(segments_.size() - 1), std::ios::app);
  if (!tail_) {
    throw IoError("LogStore: cannot open segment " + segments_.back());
  }
  tail_records_ = 0;
}

LogStore LogStore::create(const std::filesystem::path& dir) {
  return create(dir, Options{});
}

LogStore LogStore::create(const std::filesystem::path& dir,
                          Options options) {
  std::filesystem::create_directories(dir);
  if (std::filesystem::exists(dir / kManifestName)) {
    throw IoError("LogStore: store already exists in " + dir.string());
  }
  LogStore store;
  store.dir_ = dir;
  store.options_ = options;
  if (store.options_.records_per_segment == 0) {
    store.options_.records_per_segment = 1;
  }
  store.roll_segment();
  return store;
}

LogStore LogStore::open(const std::filesystem::path& dir) {
  WFLOG_SPAN(span, "store.open");
  std::ifstream manifest(dir / kManifestName);
  if (!manifest) {
    throw IoError("LogStore: no store in " + dir.string());
  }
  std::string line;
  if (!std::getline(manifest, line) || trim(line) != kMagic) {
    throw IoError("LogStore: bad manifest magic in " + dir.string());
  }

  LogStore store;
  store.dir_ = dir;
  if (!std::getline(manifest, line) ||
      !trim(line).starts_with("records_per_segment=")) {
    throw IoError("LogStore: manifest missing records_per_segment");
  }
  store.options_.records_per_segment = static_cast<std::size_t>(
      std::stoull(std::string(trim(line).substr(20))));
  while (std::getline(manifest, line)) {
    const std::string name{trim(line)};
    if (!name.empty()) store.segments_.push_back(name);
  }
  if (store.segments_.empty()) {
    throw IoError("LogStore: manifest lists no segments");
  }

  // Recover writer state by streaming every segment. A torn final line
  // (crash mid-append) parses as an error and is dropped; torn lines can
  // only be last in the final segment.
  Interner scratch;
  std::size_t max_tail_records = 0;
  bool torn_tail = false;
  std::uintmax_t tail_good_bytes = 0;  // clean prefix of the final segment
  for (std::size_t s = 0; s < store.segments_.size(); ++s) {
    std::ifstream seg(store.segment_path(s));
    if (!seg) {
      throw IoError("LogStore: missing segment " + store.segments_[s]);
    }
    const bool final_segment = s + 1 == store.segments_.size();
    std::size_t records_in_segment = 0;
    std::uintmax_t good_bytes = 0;
    while (std::getline(seg, line)) {
      if (trim(line).empty()) {
        good_bytes += line.size() + 1;
        continue;
      }
      LogRecord l;
      try {
        l = parse_jsonl_record(line, scratch);
      } catch (const IoError&) {
        if (final_segment && seg.peek() == EOF) {
          torn_tail = true;
          break;  // torn tail line: drop
        }
        throw;
      }
      good_bytes += line.size() + 1;
      ++records_in_segment;
      ++store.num_records_;
      const bool ended = scratch.name(l.activity) == kEndActivity;
      store.next_is_lsn_[l.wid] = ended ? 0 : l.is_lsn + 1;
    }
    max_tail_records = records_in_segment;
    if (final_segment) tail_good_bytes = good_bytes;
  }
  store.tail_records_ = max_tail_records;

  // Physically drop the torn bytes so the next append starts on a clean
  // line; without this the resumed record would glue onto the torn prefix
  // and corrupt the segment for every future load.
  if (torn_tail) {
    const std::filesystem::path tail_path =
        store.segment_path(store.segments_.size() - 1);
    tail_good_bytes =
        std::min(tail_good_bytes, std::filesystem::file_size(tail_path));
    std::filesystem::resize_file(tail_path, tail_good_bytes);
    WFLOG_TELEMETRY(t) { t->store_truncations_total->inc(); }
  }
  store.options_.records_per_segment =
      std::max<std::size_t>(store.options_.records_per_segment, 1);

  store.tail_.open(store.segment_path(store.segments_.size() - 1),
                   std::ios::app);
  if (!store.tail_) {
    throw IoError("LogStore: cannot reopen tail segment");
  }
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(store.segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(store.num_records_));
    span.arg("torn_tail", static_cast<std::uint64_t>(torn_tail ? 1 : 0));
  }
  return store;
}

Wid LogStore::begin_instance() {
  while (next_is_lsn_.contains(next_wid_)) ++next_wid_;
  const Wid wid = next_wid_;
  next_is_lsn_.emplace(wid, 1);
  Interner scratch;
  append_record(wid, kStartActivity, {}, {}, scratch);
  return wid;
}

void LogStore::record(Wid wid, std::string_view activity,
                      const NamedAttrs& in, const NamedAttrs& out) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  if (activity == kStartActivity || activity == kEndActivity) {
    throw Error("LogStore: activity name '" + std::string(activity) +
                "' is reserved");
  }
  Interner scratch;
  AttrMap in_map;
  for (const auto& [name, value] : in) {
    in_map.set(scratch.intern(name), value);
  }
  AttrMap out_map;
  for (const auto& [name, value] : out) {
    out_map.set(scratch.intern(name), value);
  }
  append_record(wid, activity, in_map, out_map, scratch);
}

void LogStore::end_instance(Wid wid) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  Interner scratch;
  append_record(wid, kEndActivity, {}, {}, scratch);
  next_is_lsn_[wid] = 0;
}

void LogStore::append_record(Wid wid, std::string_view activity,
                             const AttrMap& in, const AttrMap& out,
                             Interner& interner) {
  obs::Telemetry* telemetry = obs::telemetry();
  const auto t0 = telemetry != nullptr
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};

  if (tail_records_ >= options_.records_per_segment) roll_segment();

  LogRecord l;
  l.lsn = static_cast<Lsn>(num_records_ + 1);
  l.wid = wid;
  l.is_lsn = next_is_lsn_.at(wid);
  l.activity = interner.intern(activity);
  l.in = in;
  l.out = out;

  write_jsonl_record(tail_, l, interner);
  tail_.flush();
  if (!tail_) throw IoError("LogStore: append failed (disk full?)");

  ++next_is_lsn_.at(wid);
  ++tail_records_;
  ++num_records_;

  if (telemetry != nullptr) {
    telemetry->store_appends_total->inc();
    telemetry->store_flushes_total->inc();
    telemetry->store_append_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
}

Log LogStore::load() const {
  WFLOG_SPAN(span, "store.load");
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(num_records_));
  }
  Interner interner;
  std::vector<LogRecord> records;
  records.reserve(num_records_);
  std::string line;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    std::ifstream seg(segment_path(s));
    if (!seg) {
      throw IoError("LogStore: missing segment " + segments_[s]);
    }
    while (std::getline(seg, line)) {
      if (trim(line).empty()) continue;
      try {
        records.push_back(parse_jsonl_record(line, interner));
      } catch (const IoError&) {
        if (s + 1 == segments_.size() && seg.peek() == EOF) break;
        throw;
      }
    }
  }
  return Log::from_records(std::move(records), std::move(interner));
}

}  // namespace wflog
