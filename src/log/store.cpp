#include "log/store.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/text.h"
#include "log/io_jsonl.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kMagic = "wflog-store v1";

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06zu.jsonl", index);
  return buf;
}

std::string read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("LogStore: cannot read '" + path.string() + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Non-empty lines in a byte range — the best available estimate of how
/// many records a quarantined region held (its bytes are, by definition,
/// not reliably parseable).
std::size_t count_record_lines(std::string_view data) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t nl = data.find('\n', pos);
    if (nl == std::string_view::npos) nl = data.size();
    if (!trim(data.substr(pos, nl - pos)).empty()) ++n;
    pos = nl + 1;
  }
  return n;
}

}  // namespace

std::filesystem::path LogStore::segment_path(std::size_t index) const {
  return dir_ / segments_.at(index);
}

template <typename Fn>
void LogStore::with_retries(const char* what, Fn&& fn) {
  std::chrono::milliseconds backoff = options_.retry_backoff;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      fn();
      return;
    } catch (const IoError& e) {
      if (attempt >= options_.max_io_retries) {
        throw IoError("LogStore: " + std::string(what) + " failed after " +
                      std::to_string(attempt) + " retries: " + e.what());
      }
      WFLOG_TELEMETRY(t) { t->store_retries_total->inc(); }
      if (backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
  }
}

void LogStore::write_all(std::string_view data, std::size_t& off) {
  std::size_t stalls = 0;
  while (off < data.size()) {
    const std::size_t n = tail_->write(data.substr(off));
    off += n;
    tail_bytes_ += n;
    if (n == 0) {
      if (++stalls > 8) {
        throw IoError("LogStore: write made no progress");
      }
    } else {
      stalls = 0;
    }
  }
}

void LogStore::write_manifest() {
  const fs::path tmp = dir_ / "MANIFEST.tmp";
  std::string text;
  text.append(kMagic).append("\n");
  text.append("records_per_segment=")
      .append(std::to_string(options_.records_per_segment))
      .append("\n");
  for (const std::string& seg : segments_) text.append(seg).append("\n");

  // Write-then-rename keeps the manifest atomic against crashes; the tmp
  // file is fsynced before the rename regardless of the fsync policy (the
  // manifest is tiny and rolls are rare).
  with_retries("write manifest", [&] {
    WriteFilePtr f = io_->open_trunc(tmp);
    std::size_t off = 0;
    std::size_t stalls = 0;
    while (off < text.size()) {
      const std::size_t n = f->write(std::string_view(text).substr(off));
      off += n;
      if (n == 0 && ++stalls > 8) {
        throw IoError("LogStore: manifest write made no progress");
      }
    }
    f->flush();
    f->sync();
    f->close();
    io_->rename(tmp, dir_ / kManifestName);
    // The rename itself is just a directory-entry update; fsync the
    // directory so a power loss cannot roll the manifest back to its
    // previous version (strict POSIX crash semantics).
    io_->sync_dir(dir_);
  });
}

void LogStore::roll_segment() {
  WFLOG_TELEMETRY(t) { t->store_segment_rolls_total->inc(); }
  try {
    // Finish the old tail durably before the manifest names a successor:
    // segment k is fully on stable storage before any byte lands in k+1,
    // so crash loss is always confined to the final segment's suffix.
    if (tail_ != nullptr) {
      with_retries("sync segment on roll", [&] {
        tail_->flush();
        tail_->sync();
      });
      with_retries("close segment on roll", [&] { tail_->close(); });
      tail_.reset();
    }
    segments_.push_back(segment_name(segments_.size() + 1));
    // New segments start truncated: a crash between this create and the
    // manifest rename below leaves an orphan file the next roll reclaims.
    with_retries("open segment", [&] {
      tail_ = io_->open_trunc(segment_path(segments_.size() - 1));
      // Make the segment's directory entry durable before the manifest
      // names it — a manifest must never point at a file a crash can
      // un-create.
      io_->sync_dir(dir_);
    });
    tail_bytes_ = 0;
    tail_records_ = 0;
    records_since_sync_ = 0;
    write_manifest();
  } catch (...) {
    // The manifest, the files, and the in-memory state may now disagree;
    // refuse further appends rather than risk acknowledged-data loss.
    poisoned_ = true;
    throw;
  }
}

LogStore LogStore::create(const std::filesystem::path& dir) {
  return create(dir, Options{});
}

LogStore LogStore::create(const std::filesystem::path& dir,
                          Options options) {
  std::filesystem::create_directories(dir);
  if (std::filesystem::exists(dir / kManifestName)) {
    throw IoError("LogStore: store already exists in " + dir.string());
  }
  LogStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.options_.records_per_segment =
      std::max<std::size_t>(store.options_.records_per_segment, 1);
  store.options_.fsync_interval_records =
      std::max<std::size_t>(store.options_.fsync_interval_records, 1);
  store.io_ = options.io != nullptr ? options.io : real_file_io();
  store.roll_segment();
  return store;
}

LogStore LogStore::open(const std::filesystem::path& dir) {
  return open(dir, Options{});
}

RecoveryReport LogStore::reopen_in_place() {
  Options retry = options_;
  retry.io = io_;  // keep the injected seam (tests heal the fault first)
  retry.quarantine_corruption = true;
  RecoveryReport report;
  // open() throws when the directory is still unreadable; *this (and its
  // poisoned flag) survives untouched for the next attempt. On success
  // move-assignment drops the old tail handle and adopts the fresh state.
  LogStore reopened = open(dir_, retry, &report);
  *this = std::move(reopened);
  return report;
}

LogStore LogStore::open(const std::filesystem::path& dir, Options options,
                        RecoveryReport* report) {
  WFLOG_SPAN(span, "store.open");
  const fs::path manifest_path = dir / kManifestName;
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    throw IoError("LogStore: no store in " + dir.string() + " (missing '" +
                  manifest_path.string() + "')");
  }
  std::string line;
  if (!std::getline(manifest, line)) {
    throw IoError("LogStore: empty MANIFEST '" + manifest_path.string() +
                  "'");
  }
  if (trim(line) != kMagic) {
    throw IoError("LogStore: bad manifest magic in '" +
                  manifest_path.string() + "'");
  }

  LogStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.io_ = options.io != nullptr ? options.io : real_file_io();
  if (!std::getline(manifest, line) ||
      !trim(line).starts_with("records_per_segment=")) {
    throw IoError("LogStore: truncated MANIFEST '" + manifest_path.string() +
                  "' (missing records_per_segment)");
  }
  {
    const std::string_view value = trim(line).substr(20);
    std::size_t parsed = 0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || end != value.data() + value.size() ||
        parsed == 0) {
      throw IoError("LogStore: malformed records_per_segment '" +
                    std::string(value) + "' in MANIFEST '" +
                    manifest_path.string() + "'");
    }
    store.options_.records_per_segment = parsed;
  }
  store.options_.fsync_interval_records =
      std::max<std::size_t>(store.options_.fsync_interval_records, 1);
  while (std::getline(manifest, line)) {
    const std::string name{trim(line)};
    if (!name.empty()) store.segments_.push_back(name);
  }
  if (store.segments_.empty()) {
    throw IoError("LogStore: MANIFEST '" + manifest_path.string() +
                  "' lists no segments");
  }
  for (std::size_t s = 0; s < store.segments_.size(); ++s) {
    if (!fs::exists(store.segment_path(s))) {
      throw IoError("LogStore: segment '" + store.segment_path(s).string() +
                    "' is listed in MANIFEST but missing");
    }
  }

  // Recover writer state by streaming every segment. Recovery stops at the
  // first unreadable byte: a torn final line (crash mid-append) is
  // truncated; anything else is corruption — a structured IoError, or,
  // with quarantine_corruption, the corrupt suffix of the store is moved
  // aside and the readable prefix kept.
  RecoveryReport& rec = store.recovery_;
  Interner scratch;
  std::size_t corrupt_segment = 0;
  std::size_t corrupt_offset = 0;
  std::string corrupt_reason;
  bool corrupt = false;
  for (std::size_t s = 0; s < store.segments_.size() && !corrupt; ++s) {
    const fs::path seg_path = store.segment_path(s);
    const std::string data = read_whole_file(seg_path);
    const bool final_segment = s + 1 == store.segments_.size();
    std::size_t records_in_segment = 0;
    std::size_t good_bytes = 0;
    std::size_t pos = 0;
    std::size_t torn_at = std::string::npos;
    while (pos < data.size()) {
      const std::size_t nl = data.find('\n', pos);
      const bool complete = nl != std::string::npos;
      const std::string_view text{data.data() + pos,
                                  (complete ? nl : data.size()) - pos};
      const std::size_t line_end = complete ? nl + 1 : data.size();
      if (!complete) {
        // No newline: the line's write never finished (or its tail was
        // lost); even a CRC-clean prefix is unacknowledged. Truncate so
        // the next append starts on a clean line.
        torn_at = pos;
        break;
      }
      if (trim(text).empty()) {
        good_bytes = line_end;
        pos = line_end;
        continue;
      }
      LogRecord l;
      try {
        l = parse_store_line(trim(text), scratch);
      } catch (const IoError& e) {
        // A complete (newline-terminated) line that fails to parse or
        // checksum is corruption, not tearing: a crash cut leaves either a
        // clean line boundary or a line missing its newline.
        corrupt = true;
        corrupt_segment = s;
        corrupt_offset = pos;
        corrupt_reason = e.what();
        break;
      }
      good_bytes = line_end;
      pos = line_end;
      ++records_in_segment;
      ++store.num_records_;
      const bool ended = scratch.name(l.activity) == kEndActivity;
      store.next_is_lsn_[l.wid] = ended ? 0 : l.is_lsn + 1;
    }
    store.tail_records_ = records_in_segment;

    if (torn_at != std::string::npos) {
      if (!final_segment && !corrupt) {
        // A torn line before the final segment cannot come from a crash
        // (rolls sync the old tail first): treat it as corruption.
        corrupt = true;
        corrupt_segment = s;
        corrupt_offset = torn_at;
        corrupt_reason = "torn line in non-final segment";
      } else if (!corrupt) {
        store.io_->truncate(seg_path, good_bytes);
        rec.torn_tail_truncated = true;
        rec.notes.push_back("truncated torn tail of '" + seg_path.string() +
                            "' at byte " + std::to_string(good_bytes));
        WFLOG_TELEMETRY(t) { t->store_truncations_total->inc(); }
      }
    }
  }

  if (corrupt) {
    const fs::path seg_path = store.segment_path(corrupt_segment);
    if (!store.options_.quarantine_corruption) {
      throw IoError("LogStore: corrupt record in segment '" +
                    seg_path.string() + "' at byte " +
                    std::to_string(corrupt_offset) + " (" + corrupt_reason +
                    "); reopen with quarantine_corruption to recover the "
                    "readable prefix");
    }
    // Quarantine: move every byte from the corruption onward — the rest of
    // this segment plus all later segments — into a QUARANTINE file, then
    // truncate the store to its readable prefix.
    fs::path qpath;
    for (std::size_t i = 1;; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "QUARANTINE-%06zu", i);
      qpath = dir / buf;
      if (!fs::exists(qpath)) break;
    }
    std::size_t dropped = 0;
    std::uintmax_t qbytes = 0;
    {
      WriteFilePtr q = store.io_->open_trunc(qpath);
      const auto quarantine_bytes = [&](std::string_view bytes) {
        dropped += count_record_lines(bytes);
        qbytes += bytes.size();
        std::size_t off = 0;
        while (off < bytes.size()) off += q->write(bytes.substr(off));
      };
      const std::string head = read_whole_file(seg_path);
      quarantine_bytes(std::string_view(head).substr(corrupt_offset));
      for (std::size_t s = corrupt_segment + 1; s < store.segments_.size();
           ++s) {
        quarantine_bytes(read_whole_file(store.segment_path(s)));
      }
      q->flush();
      q->sync();
      q->close();
    }
    rec.records_dropped = dropped;
    rec.bytes_quarantined = qbytes;
    rec.segments_quarantined = store.segments_.size() - corrupt_segment;
    rec.notes.push_back("quarantined " + std::to_string(qbytes) +
                        " corrupt bytes (" + std::to_string(dropped) +
                        " record lines) from '" + seg_path.string() +
                        "' byte " + std::to_string(corrupt_offset) +
                        " onward into '" + qpath.string() + "': " +
                        corrupt_reason);
    store.io_->truncate(seg_path, corrupt_offset);
    for (std::size_t s = store.segments_.size(); s-- > corrupt_segment + 1;) {
      store.io_->remove(store.segment_path(s));
    }
    store.segments_.resize(corrupt_segment + 1);
    store.write_manifest();
    // Writer state was accumulated only over the readable prefix; recount
    // the kept tail segment's records for the roll bookkeeping.
    store.tail_records_ = 0;
    {
      const std::string kept = read_whole_file(seg_path);
      store.tail_records_ = count_record_lines(kept);
    }
    WFLOG_TELEMETRY(t) { t->store_corrupt_records_total->add(dropped); }
  }

  store.with_retries("open tail segment", [&] {
    store.tail_ = store.io_->open_append(
        store.segment_path(store.segments_.size() - 1));
  });
  {
    std::error_code ec;
    const std::uintmax_t size =
        fs::file_size(store.segment_path(store.segments_.size() - 1), ec);
    store.tail_bytes_ = ec ? 0 : size;
  }
  store.recovery_.records_recovered = store.num_records_;
  if (report != nullptr) *report = store.recovery_;
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(store.segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(store.num_records_));
    span.arg("torn_tail",
             static_cast<std::uint64_t>(rec.torn_tail_truncated ? 1 : 0));
    span.arg("dropped", static_cast<std::uint64_t>(rec.records_dropped));
  }
  return store;
}

LogStore::~LogStore() {
  if (tail_ == nullptr) return;
  // Best-effort durable shutdown; destructors must not throw.
  try {
    tail_->flush();
    if (options_.fsync_policy != FsyncPolicy::kOff) tail_->sync();
    tail_->close();
  } catch (...) {
  }
}

Wid LogStore::begin_instance() {
  while (next_is_lsn_.contains(next_wid_)) ++next_wid_;
  const Wid wid = next_wid_;
  next_is_lsn_.emplace(wid, 1);
  Interner scratch;
  try {
    append_record(wid, kStartActivity, {}, {}, scratch);
  } catch (...) {
    next_is_lsn_.erase(wid);  // the instance never existed
    throw;
  }
  return wid;
}

void LogStore::record(Wid wid, std::string_view activity,
                      const NamedAttrs& in, const NamedAttrs& out) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  if (activity == kStartActivity || activity == kEndActivity) {
    throw Error("LogStore: activity name '" + std::string(activity) +
                "' is reserved");
  }
  Interner scratch;
  AttrMap in_map;
  for (const auto& [name, value] : in) {
    in_map.set(scratch.intern(name), value);
  }
  AttrMap out_map;
  for (const auto& [name, value] : out) {
    out_map.set(scratch.intern(name), value);
  }
  append_record(wid, activity, in_map, out_map, scratch);
}

void LogStore::end_instance(Wid wid) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  Interner scratch;
  append_record(wid, kEndActivity, {}, {}, scratch);
  next_is_lsn_[wid] = 0;
}

void LogStore::sync() {
  if (tail_ == nullptr) return;
  with_retries("fsync", [&] {
    tail_->flush();
    tail_->sync();
  });
  records_since_sync_ = 0;
}

void LogStore::append_record(Wid wid, std::string_view activity,
                             const AttrMap& in, const AttrMap& out,
                             Interner& interner) {
  obs::Telemetry* telemetry = obs::telemetry();
  const auto t0 = telemetry != nullptr
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};

  if (poisoned_) {
    throw IoError(
        "LogStore: store failed after a structural write error; reopen '" +
        dir_.string() + "' to recover");
  }
  if (tail_records_ >= options_.records_per_segment) roll_segment();

  LogRecord l;
  l.lsn = static_cast<Lsn>(num_records_ + 1);
  l.wid = wid;
  l.is_lsn = next_is_lsn_.at(wid);
  l.activity = interner.intern(activity);
  l.in = in;
  l.out = out;

  const std::string line = to_store_line(l, interner);
  const std::uintmax_t good = tail_bytes_;
  const bool want_sync =
      options_.fsync_policy == FsyncPolicy::kPerAppend ||
      (options_.fsync_policy == FsyncPolicy::kInterval &&
       records_since_sync_ + 1 >= options_.fsync_interval_records);
  try {
    // Short writes resume from the accepted offset; transient errors are
    // retried in place, so a record is written at most once.
    std::size_t off = 0;
    with_retries("append record", [&] {
      write_all(line, off);
      tail_->flush();
    });
    if (want_sync) {
      with_retries("fsync after append", [&] { tail_->sync(); });
      records_since_sync_ = 0;
    } else {
      ++records_since_sync_;
    }
  } catch (const IoError&) {
    // Leave no partial line behind: truncate the tail back to the last
    // acknowledged record so in-process writing can continue cleanly.
    recover_tail_to(good);
    throw;
  }

  ++next_is_lsn_.at(wid);
  ++tail_records_;
  ++num_records_;

  if (telemetry != nullptr) {
    telemetry->store_appends_total->inc();
    telemetry->store_flushes_total->inc();
    if (want_sync) telemetry->store_syncs_total->inc();
    telemetry->store_append_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
}

void LogStore::recover_tail_to(std::uintmax_t good_bytes) noexcept {
  const fs::path path = segment_path(segments_.size() - 1);
  try {
    tail_->close();
  } catch (...) {
    // Close failure does not prevent the truncate below.
  }
  tail_.reset();
  try {
    io_->truncate(path, good_bytes);
    tail_ = io_->open_append(path);
    tail_bytes_ = good_bytes;
  } catch (...) {
    poisoned_ = true;
  }
}

Log LogStore::load() const {
  WFLOG_SPAN(span, "store.load");
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(num_records_));
  }
  Interner interner;
  std::vector<LogRecord> records;
  records.reserve(num_records_);
  std::string line;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    std::ifstream seg(segment_path(s));
    if (!seg) {
      throw IoError("LogStore: missing segment '" +
                    segment_path(s).string() + "'");
    }
    while (std::getline(seg, line)) {
      if (trim(line).empty()) continue;
      try {
        records.push_back(parse_store_line(trim(line), interner));
      } catch (const IoError&) {
        if (s + 1 == segments_.size() && seg.peek() == EOF) break;
        throw;
      }
    }
  }
  return Log::from_records(std::move(records), std::move(interner));
}

}  // namespace wflog
