#include "log/store.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/text.h"
#include "log/io_jsonl.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kMagic = "wflog-store v1";

std::string segment_name(std::size_t id, SegmentFormat format) {
  char buf[32];
  std::snprintf(buf, sizeof buf,
                format == SegmentFormat::kV2Blocks ? "seg-%06zu.wfseg"
                                                   : "seg-%06zu.jsonl",
                id);
  return buf;
}

SegmentFormat format_of(std::string_view name) {
  return name.ends_with(".wfseg") ? SegmentFormat::kV2Blocks
                                  : SegmentFormat::kV1Jsonl;
}

/// Numeric id embedded in a segment file name ("seg-000042.wfseg" -> 42);
/// 0 when the name does not follow the scheme.
std::size_t parse_segment_id(std::string_view name) {
  if (!name.starts_with("seg-")) return 0;
  const std::string_view digits = name.substr(4);
  std::size_t id = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), id);
  return ec == std::errc{} ? id : 0;
}

std::string read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("LogStore: cannot read '" + path.string() + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Non-empty lines in a byte range — the best available estimate of how
/// many records a quarantined v1 region held (its bytes are, by
/// definition, not reliably parseable).
std::size_t count_record_lines(std::string_view data) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t nl = data.find('\n', pos);
    if (nl == std::string_view::npos) nl = data.size();
    if (!trim(data.substr(pos, nl - pos)).empty()) ++n;
    pos = nl + 1;
  }
  return n;
}

/// Records a quarantined v2 byte range held, as far as its structure
/// still tells: a valid footer is exact, otherwise a block scan counts
/// the decodable prefix, otherwise zero.
std::size_t count_v2_records(std::string_view data) {
  if (const auto footer = try_read_v2_footer(data)) {
    return footer->footer.record_count;
  }
  std::size_t n = 0;
  for (const BlockZone& z : scan_v2_blocks(data).zones) n += z.record_count;
  return n;
}

/// Invokes `fn(record, line)` for every store line in an uncompressed
/// block payload. Throws IoError on an unparseable line.
template <typename Fn>
void for_each_payload_record(std::string_view payload, Interner& interner,
                             Fn&& fn) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) nl = payload.size();
    const std::string_view line = trim(payload.substr(pos, nl - pos));
    pos = nl + 1;
    if (line.empty()) continue;
    fn(parse_store_line(line, interner), line);
  }
}

std::string manifest_text(std::size_t records_per_segment,
                          const std::vector<std::string>& segments) {
  std::string text;
  text.append(kMagic).append("\n");
  text.append("records_per_segment=")
      .append(std::to_string(records_per_segment))
      .append("\n");
  for (const std::string& seg : segments) text.append(seg).append("\n");
  return text;
}

/// Atomic manifest replacement: write tmp, fsync, rename, fsync the
/// directory (a rename is only durable once its directory entry is).
void write_manifest_file(FileIo& io, const fs::path& dir, std::string text) {
  const fs::path tmp = dir / "MANIFEST.tmp";
  WriteFilePtr f = io.open_trunc(tmp);
  std::size_t off = 0;
  std::size_t stalls = 0;
  while (off < text.size()) {
    const std::size_t n = f->write(std::string_view(text).substr(off));
    off += n;
    if (n == 0 && ++stalls > 8) {
      throw IoError("LogStore: manifest write made no progress");
    }
  }
  f->flush();
  f->sync();
  f->close();
  io.rename(tmp, dir / kManifestName);
  io.sync_dir(dir);
}

}  // namespace

std::filesystem::path LogStore::segment_path(std::size_t index) const {
  return dir_ / segments_.at(index);
}

std::size_t LogStore::next_segment_id() const {
  std::size_t max_id = 0;
  for (const std::string& name : segments_) {
    max_id = std::max(max_id, parse_segment_id(name));
  }
  return max_id + 1;
}

template <typename Fn>
void LogStore::with_retries(const char* what, Fn&& fn) {
  std::chrono::milliseconds backoff = options_.retry_backoff;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      fn();
      return;
    } catch (const IoError& e) {
      if (attempt >= options_.max_io_retries) {
        throw IoError("LogStore: " + std::string(what) + " failed after " +
                      std::to_string(attempt) + " retries: " + e.what());
      }
      WFLOG_TELEMETRY(t) { t->store_retries_total->inc(); }
      if (backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
  }
}

void LogStore::write_all(std::string_view data, std::size_t& off) {
  std::size_t stalls = 0;
  while (off < data.size()) {
    const std::size_t n = tail_->write(data.substr(off));
    off += n;
    tail_bytes_ += n;
    if (n == 0) {
      if (++stalls > 8) {
        throw IoError("LogStore: write made no progress");
      }
    } else {
      stalls = 0;
    }
  }
}

void LogStore::write_manifest() {
  // Write-then-rename keeps the manifest atomic against crashes; the tmp
  // file is fsynced before the rename regardless of the fsync policy (the
  // manifest is tiny and rolls are rare).
  with_retries("write manifest", [&] {
    write_manifest_file(*io_, dir_,
                        manifest_text(options_.records_per_segment,
                                      segments_));
  });
}

void LogStore::flush_pending_block(bool sync_after) {
  if (pending_.empty()) return;
  const EncodedBlock block = pending_.encode(tail_bytes_);
  const std::uintmax_t good = block.zone.file_offset;
  try {
    std::size_t off = 0;
    with_retries("write block", [&] {
      write_all(block.bytes, off);
      tail_->flush();
    });
    if (sync_after) {
      with_retries("fsync after block", [&] { tail_->sync(); });
    }
  } catch (const IoError&) {
    // Drop the partial (or written-but-not-durable) block from the file;
    // its records — acknowledged ones and (if the caller is mid-append)
    // the current one — stay buffered in pending_ for the next flush
    // attempt, so load() keeps seeing every acknowledged record.
    recover_tail_to(good);
    throw;
  }
  tail_zones_.push_back(block.zone);
  pending_.clear();
  WFLOG_TELEMETRY(t) {
    t->store_blocks_written_total->inc();
    t->store_compressed_bytes_total->add(block.zone.compressed_size);
    t->store_uncompressed_bytes_total->add(block.zone.uncompressed_size);
  }
}

void LogStore::seal_tail() {
  SegmentFooter footer;
  footer.blocks = tail_zones_;
  footer.record_count = tail_records_;
  footer.next_is_lsn.reserve(tail_watermark_.size());
  for (const auto& [wid, next] : tail_watermark_) {
    footer.next_is_lsn.emplace_back(wid, next);
  }
  const std::string bytes = encode_v2_footer(footer);
  std::size_t off = 0;
  with_retries("seal segment", [&] {
    write_all(bytes, off);
    tail_->flush();
  });
  footers_[segments_.size() - 1] = std::move(footer);
  tail_sealed_ = true;
}

void LogStore::roll_segment() {
  WFLOG_TELEMETRY(t) { t->store_segment_rolls_total->inc(); }
  try {
    // Finish the old tail durably before the manifest names a successor:
    // segment k is fully on stable storage before any byte lands in k+1,
    // so crash loss is always confined to the final segment's suffix.
    if (tail_ != nullptr) {
      if (tail_format_ == SegmentFormat::kV2Blocks && !tail_sealed_) {
        flush_pending_block();
        seal_tail();
      }
      with_retries("sync segment on roll", [&] {
        tail_->flush();
        tail_->sync();
      });
      with_retries("close segment on roll", [&] { tail_->close(); });
      tail_.reset();
    }
    segments_.push_back(
        segment_name(next_segment_id(), options_.segment_format));
    // New segments start truncated: a crash between this create and the
    // manifest rename below leaves an orphan file compaction reclaims.
    with_retries("open segment", [&] {
      tail_ = io_->open_trunc(segment_path(segments_.size() - 1));
      // Make the segment's directory entry durable before the manifest
      // names it — a manifest must never point at a file a crash can
      // un-create.
      io_->sync_dir(dir_);
    });
    tail_bytes_ = 0;
    tail_records_ = 0;
    records_since_sync_ = 0;
    tail_format_ = options_.segment_format;
    tail_sealed_ = false;
    tail_zones_.clear();
    tail_watermark_.clear();
    pending_.clear();
    if (tail_format_ == SegmentFormat::kV2Blocks) {
      std::size_t off = 0;
      with_retries("write segment magic", [&] {
        write_all(kSegV2FileMagic, off);
        tail_->flush();
      });
    }
    write_manifest();
  } catch (...) {
    // The manifest, the files, and the in-memory state may now disagree;
    // refuse further appends rather than risk acknowledged-data loss.
    poisoned_ = true;
    throw;
  }
}

LogStore LogStore::create(const std::filesystem::path& dir) {
  return create(dir, Options{});
}

LogStore LogStore::create(const std::filesystem::path& dir,
                          Options options) {
  std::filesystem::create_directories(dir);
  if (std::filesystem::exists(dir / kManifestName)) {
    throw IoError("LogStore: store already exists in " + dir.string());
  }
  LogStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.options_.records_per_segment =
      std::max<std::size_t>(store.options_.records_per_segment, 1);
  store.options_.fsync_interval_records =
      std::max<std::size_t>(store.options_.fsync_interval_records, 1);
  store.options_.block_target_bytes =
      std::max<std::size_t>(store.options_.block_target_bytes, 1);
  store.io_ = options.io != nullptr ? options.io : real_file_io();
  store.roll_segment();
  return store;
}

LogStore LogStore::open(const std::filesystem::path& dir) {
  return open(dir, Options{});
}

RecoveryReport LogStore::reopen_in_place() {
  Options retry = options_;
  retry.io = io_;  // keep the injected seam (tests heal the fault first)
  retry.quarantine_corruption = true;
  RecoveryReport report;
  // open() throws when the directory is still unreadable; *this (and its
  // poisoned flag) survives untouched for the next attempt. On success
  // move-assignment drops the old tail handle and adopts the fresh state.
  LogStore reopened = open(dir_, retry, &report);
  *this = std::move(reopened);
  return report;
}

LogStore LogStore::open(const std::filesystem::path& dir, Options options,
                        RecoveryReport* report) {
  WFLOG_SPAN(span, "store.open");
  const fs::path manifest_path = dir / kManifestName;
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    throw IoError("LogStore: no store in " + dir.string() + " (missing '" +
                  manifest_path.string() + "')");
  }
  std::string line;
  if (!std::getline(manifest, line)) {
    throw IoError("LogStore: empty MANIFEST '" + manifest_path.string() +
                  "'");
  }
  if (trim(line) != kMagic) {
    throw IoError("LogStore: bad manifest magic in '" +
                  manifest_path.string() + "'");
  }

  LogStore store;
  store.dir_ = dir;
  store.options_ = options;
  store.io_ = options.io != nullptr ? options.io : real_file_io();
  if (!std::getline(manifest, line) ||
      !trim(line).starts_with("records_per_segment=")) {
    throw IoError("LogStore: truncated MANIFEST '" + manifest_path.string() +
                  "' (missing records_per_segment)");
  }
  {
    const std::string_view value = trim(line).substr(20);
    std::size_t parsed = 0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || end != value.data() + value.size() ||
        parsed == 0) {
      throw IoError("LogStore: malformed records_per_segment '" +
                    std::string(value) + "' in MANIFEST '" +
                    manifest_path.string() + "'");
    }
    store.options_.records_per_segment = parsed;
  }
  store.options_.fsync_interval_records =
      std::max<std::size_t>(store.options_.fsync_interval_records, 1);
  store.options_.block_target_bytes =
      std::max<std::size_t>(store.options_.block_target_bytes, 1);
  while (std::getline(manifest, line)) {
    const std::string name{trim(line)};
    if (!name.empty()) store.segments_.push_back(name);
  }
  if (store.segments_.empty()) {
    throw IoError("LogStore: MANIFEST '" + manifest_path.string() +
                  "' lists no segments");
  }
  for (std::size_t s = 0; s < store.segments_.size(); ++s) {
    if (!fs::exists(store.segment_path(s))) {
      throw IoError("LogStore: segment '" + store.segment_path(s).string() +
                    "' is listed in MANIFEST but missing");
    }
  }

  // Recover writer state by streaming every segment. Sealed v2 segments
  // take the footer fast path: the footer's own CRC vouches for the zone
  // table, so neither blocks nor records are re-read (per-block payload
  // CRCs still guard every later read). Everything else — v1 segments,
  // the unsealed v2 tail — is scanned record by record. Recovery stops at
  // the first unreadable byte: a torn tail (crash mid-append or mid-seal)
  // is truncated; anything else is corruption — a structured IoError, or,
  // with quarantine_corruption, the corrupt suffix of the store is moved
  // aside and the readable prefix kept.
  RecoveryReport& rec = store.recovery_;
  Interner scratch;
  std::size_t corrupt_segment = 0;
  std::size_t corrupt_offset = 0;
  std::string corrupt_reason;
  bool corrupt = false;
  // v2 tail scan state of the most recently scanned segment, kept so the
  // survivor of a quarantine truncation has zones/watermark to continue
  // with.
  std::vector<BlockZone> last_zones;
  std::map<Wid, IsLsn> last_watermark;

  for (std::size_t s = 0; s < store.segments_.size() && !corrupt; ++s) {
    const fs::path seg_path = store.segment_path(s);
    const bool final_segment = s + 1 == store.segments_.size();
    last_zones.clear();
    last_watermark.clear();

    if (format_of(store.segments_[s]) == SegmentFormat::kV2Blocks) {
      const std::string data = read_whole_file(seg_path);

      if (auto footer = try_read_v2_footer(data)) {
        // Sealed fast path: no block re-scan on reopen.
        store.num_records_ += footer->footer.record_count;
        store.tail_records_ = footer->footer.record_count;
        for (const auto& [wid, next] : footer->footer.next_is_lsn) {
          store.next_is_lsn_[wid] = static_cast<IsLsn>(next);
        }
        store.footers_[s] = std::move(footer->footer);
        if (final_segment) store.tail_sealed_ = true;
        WFLOG_TELEMETRY(t) { t->store_sealed_reopen_skips_total->inc(); }
        continue;
      }

      BlockScan scan = scan_v2_blocks(data);
      std::size_t records_in_segment = 0;
      // scan_v2_blocks already parsed these payloads (to rebuild zones);
      // a second pass over the in-memory strings cannot fail.
      for (const std::string& payload : scan.payloads) {
        for_each_payload_record(
            payload, scratch, [&](const LogRecord& l, std::string_view) {
              ++records_in_segment;
              ++store.num_records_;
              const bool ended = scratch.name(l.activity) == kEndActivity;
              const IsLsn next = ended ? 0 : l.is_lsn + 1;
              store.next_is_lsn_[l.wid] = next;
              last_watermark[l.wid] = next;
            });
      }
      store.tail_records_ = records_in_segment;
      last_zones = scan.zones;

      if (!scan.corrupt_reason.empty()) {
        corrupt = true;
        corrupt_segment = s;
        corrupt_offset = scan.good_bytes;
        corrupt_reason = scan.corrupt_reason;
      } else if (scan.torn) {
        if (!final_segment) {
          // Rolls seal and sync a segment before its successor exists, so
          // torn data mid-store cannot come from a crash.
          corrupt = true;
          corrupt_segment = s;
          corrupt_offset = scan.good_bytes;
          corrupt_reason = "torn data in non-final segment";
        } else {
          store.io_->truncate(seg_path, scan.good_bytes);
          rec.torn_tail_truncated = true;
          rec.notes.push_back("truncated torn tail of '" + seg_path.string() +
                              "' at byte " +
                              std::to_string(scan.good_bytes));
          WFLOG_TELEMETRY(t) {
            t->store_truncations_total->inc();
            t->store_footer_recoveries_total->inc();
          }
        }
      }
      if (!corrupt) {
        if (final_segment) {
          store.tail_zones_ = std::move(scan.zones);
          store.tail_watermark_ = last_watermark;
        } else {
          // A clean, unsealed segment mid-store: its footer was lost
          // (e.g. the store was truncated here by an earlier quarantine).
          // Synthesize the zone table in memory from the scan — reads and
          // pruning work; the next compaction rewrites it sealed.
          SegmentFooter synth;
          synth.blocks = std::move(scan.zones);
          synth.record_count = records_in_segment;
          for (const auto& [wid, next] : last_watermark) {
            synth.next_is_lsn.emplace_back(wid, next);
          }
          store.footers_[s] = std::move(synth);
          rec.notes.push_back("rebuilt zone maps of unsealed segment '" +
                              seg_path.string() + "' by block scan");
          WFLOG_TELEMETRY(t) { t->store_footer_recoveries_total->inc(); }
        }
      }
      continue;
    }

    // ----- v1 JSONL segment ------------------------------------------------
    const std::string data = read_whole_file(seg_path);
    std::size_t records_in_segment = 0;
    std::size_t good_bytes = 0;
    std::size_t pos = 0;
    std::size_t torn_at = std::string::npos;
    while (pos < data.size()) {
      const std::size_t nl = data.find('\n', pos);
      const bool complete = nl != std::string::npos;
      const std::string_view text{data.data() + pos,
                                  (complete ? nl : data.size()) - pos};
      const std::size_t line_end = complete ? nl + 1 : data.size();
      if (!complete) {
        // No newline: the line's write never finished (or its tail was
        // lost); even a CRC-clean prefix is unacknowledged. Truncate so
        // the next append starts on a clean line.
        torn_at = pos;
        break;
      }
      if (trim(text).empty()) {
        good_bytes = line_end;
        pos = line_end;
        continue;
      }
      LogRecord l;
      try {
        l = parse_store_line(trim(text), scratch);
      } catch (const IoError& e) {
        // A complete (newline-terminated) line that fails to parse or
        // checksum is corruption, not tearing: a crash cut leaves either a
        // clean line boundary or a line missing its newline.
        corrupt = true;
        corrupt_segment = s;
        corrupt_offset = pos;
        corrupt_reason = e.what();
        break;
      }
      good_bytes = line_end;
      pos = line_end;
      ++records_in_segment;
      ++store.num_records_;
      const bool ended = scratch.name(l.activity) == kEndActivity;
      store.next_is_lsn_[l.wid] = ended ? 0 : l.is_lsn + 1;
    }
    store.tail_records_ = records_in_segment;

    if (torn_at != std::string::npos) {
      if (!final_segment && !corrupt) {
        // A torn line before the final segment cannot come from a crash
        // (rolls sync the old tail first): treat it as corruption.
        corrupt = true;
        corrupt_segment = s;
        corrupt_offset = torn_at;
        corrupt_reason = "torn line in non-final segment";
      } else if (!corrupt) {
        store.io_->truncate(seg_path, good_bytes);
        rec.torn_tail_truncated = true;
        rec.notes.push_back("truncated torn tail of '" + seg_path.string() +
                            "' at byte " + std::to_string(good_bytes));
        WFLOG_TELEMETRY(t) { t->store_truncations_total->inc(); }
      }
    }
  }

  if (corrupt) {
    const fs::path seg_path = store.segment_path(corrupt_segment);
    if (!store.options_.quarantine_corruption) {
      throw IoError("LogStore: corrupt record in segment '" +
                    seg_path.string() + "' at byte " +
                    std::to_string(corrupt_offset) + " (" + corrupt_reason +
                    "); reopen with quarantine_corruption to recover the "
                    "readable prefix");
    }
    // Quarantine: move every byte from the corruption onward — the rest of
    // this segment plus all later segments — into a QUARANTINE file, then
    // truncate the store to its readable prefix.
    fs::path qpath;
    for (std::size_t i = 1;; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "QUARANTINE-%06zu", i);
      qpath = dir / buf;
      if (!fs::exists(qpath)) break;
    }
    std::size_t dropped = 0;
    std::uintmax_t qbytes = 0;
    {
      WriteFilePtr q = store.io_->open_trunc(qpath);
      const auto quarantine_bytes = [&](std::string_view bytes,
                                        SegmentFormat format,
                                        bool whole_file) {
        if (format == SegmentFormat::kV1Jsonl) {
          dropped += count_record_lines(bytes);
        } else if (whole_file) {
          dropped += count_v2_records(bytes);
        }
        // A v2 suffix cut mid-file has no parseable structure to count;
        // the byte tally still records exactly what was set aside.
        qbytes += bytes.size();
        std::size_t off = 0;
        while (off < bytes.size()) off += q->write(bytes.substr(off));
      };
      const std::string head = read_whole_file(seg_path);
      quarantine_bytes(std::string_view(head).substr(corrupt_offset),
                       format_of(store.segments_[corrupt_segment]),
                       corrupt_offset == 0);
      for (std::size_t s = corrupt_segment + 1; s < store.segments_.size();
           ++s) {
        quarantine_bytes(read_whole_file(store.segment_path(s)),
                         format_of(store.segments_[s]),
                         /*whole_file=*/true);
      }
      q->flush();
      q->sync();
      q->close();
    }
    rec.records_dropped = dropped;
    rec.bytes_quarantined = qbytes;
    rec.segments_quarantined = store.segments_.size() - corrupt_segment;
    rec.notes.push_back("quarantined " + std::to_string(qbytes) +
                        " corrupt bytes (" + std::to_string(dropped) +
                        " record lines) from '" + seg_path.string() +
                        "' byte " + std::to_string(corrupt_offset) +
                        " onward into '" + qpath.string() + "': " +
                        corrupt_reason);
    store.io_->truncate(seg_path, corrupt_offset);
    for (std::size_t s = store.segments_.size(); s-- > corrupt_segment + 1;) {
      store.io_->remove(store.segment_path(s));
    }
    store.segments_.resize(corrupt_segment + 1);
    store.footers_.erase(store.footers_.lower_bound(corrupt_segment),
                         store.footers_.end());
    store.write_manifest();
    // Writer state was accumulated only over the readable prefix; recount
    // the kept tail segment's records for the roll bookkeeping.
    store.tail_sealed_ = false;
    if (format_of(store.segments_.back()) == SegmentFormat::kV2Blocks) {
      store.tail_records_ = 0;
      for (const BlockZone& z : last_zones) store.tail_records_ += z.record_count;
      store.tail_zones_ = std::move(last_zones);
      store.tail_watermark_ = std::move(last_watermark);
    } else {
      const std::string kept = read_whole_file(seg_path);
      store.tail_records_ = count_record_lines(kept);
    }
    WFLOG_TELEMETRY(t) { t->store_corrupt_records_total->add(dropped); }
  }

  // Open the tail for appending. A sealed v2 tail (crash between seal and
  // successor creation) stays closed: the next append rolls first.
  store.tail_format_ = format_of(store.segments_.back());
  {
    std::error_code ec;
    const std::uintmax_t size =
        fs::file_size(store.segment_path(store.segments_.size() - 1), ec);
    store.tail_bytes_ = ec ? 0 : size;
  }
  if (!(store.tail_format_ == SegmentFormat::kV2Blocks &&
        store.tail_sealed_)) {
    store.with_retries("open tail segment", [&] {
      store.tail_ = store.io_->open_append(
          store.segment_path(store.segments_.size() - 1));
    });
    if (store.tail_format_ == SegmentFormat::kV2Blocks &&
        store.tail_bytes_ < kSegV2FileMagic.size()) {
      // The tail was created but its magic never became durable (crash
      // right after the roll): rewrite it so appends land in a valid file.
      store.with_retries("rewrite tail segment magic", [&] {
        store.tail_->close();
        store.tail_ = store.io_->open_trunc(
            store.segment_path(store.segments_.size() - 1));
        store.tail_bytes_ = 0;
        std::size_t off = 0;
        store.write_all(kSegV2FileMagic, off);
        store.tail_->flush();
      });
      store.tail_records_ = 0;
      store.tail_zones_.clear();
      store.tail_watermark_.clear();
    }
  }
  store.recovery_.records_recovered = store.num_records_;
  if (report != nullptr) *report = store.recovery_;
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(store.segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(store.num_records_));
    span.arg("torn_tail",
             static_cast<std::uint64_t>(rec.torn_tail_truncated ? 1 : 0));
    span.arg("dropped", static_cast<std::uint64_t>(rec.records_dropped));
  }
  return store;
}

LogStore::~LogStore() {
  if (tail_ == nullptr) return;
  // Best-effort durable shutdown; destructors must not throw.
  try {
    if (tail_format_ == SegmentFormat::kV2Blocks && !pending_.empty() &&
        !poisoned_) {
      flush_pending_block();
    }
    tail_->flush();
    if (options_.fsync_policy != FsyncPolicy::kOff) tail_->sync();
    tail_->close();
  } catch (...) {
  }
}

Wid LogStore::begin_instance() {
  while (next_is_lsn_.contains(next_wid_)) ++next_wid_;
  const Wid wid = next_wid_;
  next_is_lsn_.emplace(wid, 1);
  Interner scratch;
  try {
    append_record(wid, kStartActivity, {}, {}, scratch);
  } catch (...) {
    next_is_lsn_.erase(wid);  // the instance never existed
    throw;
  }
  return wid;
}

void LogStore::record(Wid wid, std::string_view activity,
                      const NamedAttrs& in, const NamedAttrs& out) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  if (activity == kStartActivity || activity == kEndActivity) {
    throw Error("LogStore: activity name '" + std::string(activity) +
                "' is reserved");
  }
  Interner scratch;
  AttrMap in_map;
  for (const auto& [name, value] : in) {
    in_map.set(scratch.intern(name), value);
  }
  AttrMap out_map;
  for (const auto& [name, value] : out) {
    out_map.set(scratch.intern(name), value);
  }
  append_record(wid, activity, in_map, out_map, scratch);
}

void LogStore::end_instance(Wid wid) {
  const auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    throw Error("LogStore: instance " + std::to_string(wid) +
                " is not open");
  }
  Interner scratch;
  append_record(wid, kEndActivity, {}, {}, scratch);
  next_is_lsn_[wid] = 0;
}

void LogStore::sync() {
  if (tail_ == nullptr) return;
  if (tail_format_ == SegmentFormat::kV2Blocks) flush_pending_block();
  with_retries("fsync", [&] {
    tail_->flush();
    tail_->sync();
  });
  records_since_sync_ = 0;
}

void LogStore::append_record(Wid wid, std::string_view activity,
                             const AttrMap& in, const AttrMap& out,
                             Interner& interner) {
  obs::Telemetry* telemetry = obs::telemetry();
  const auto t0 = telemetry != nullptr
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};

  if (poisoned_) {
    throw IoError(
        "LogStore: store failed after a structural write error; reopen '" +
        dir_.string() + "' to recover");
  }
  if (tail_records_ >= options_.records_per_segment || tail_sealed_ ||
      tail_ == nullptr) {
    roll_segment();
  }

  LogRecord l;
  l.lsn = static_cast<Lsn>(num_records_ + 1);
  l.wid = wid;
  l.is_lsn = next_is_lsn_.at(wid);
  l.activity = interner.intern(activity);
  l.in = in;
  l.out = out;

  const std::string line = to_store_line(l, interner);
  const bool want_sync =
      options_.fsync_policy == FsyncPolicy::kPerAppend ||
      (options_.fsync_policy == FsyncPolicy::kInterval &&
       records_since_sync_ + 1 >= options_.fsync_interval_records);

  if (tail_format_ == SegmentFormat::kV2Blocks) {
    // BlockBuilder frames lines itself; hand it the line sans newline.
    pending_.add(l, activity,
                 std::string_view(line).substr(0, line.size() - 1));
    const bool flush =
        want_sync || pending_.payload_bytes() >= options_.block_target_bytes;
    try {
      // The fsync rides inside flush_pending_block's guarded scope: if it
      // fails after the block hit the file, the block is truncated away
      // again, so the builder below is never empty when we unwind.
      if (flush) flush_pending_block(want_sync);
    } catch (const IoError&) {
      // The failed block's records stay buffered; only the current —
      // unacknowledged — record must leave the buffer.
      pending_.remove_last();
      throw;
    }
    if (want_sync) {
      records_since_sync_ = 0;
    } else {
      ++records_since_sync_;
    }
  } else {
    const std::uintmax_t good = tail_bytes_;
    try {
      // Short writes resume from the accepted offset; transient errors are
      // retried in place, so a record is written at most once.
      std::size_t off = 0;
      with_retries("append record", [&] {
        write_all(line, off);
        tail_->flush();
      });
      if (want_sync) {
        with_retries("fsync after append", [&] { tail_->sync(); });
        records_since_sync_ = 0;
      } else {
        ++records_since_sync_;
      }
    } catch (const IoError&) {
      // Leave no partial line behind: truncate the tail back to the last
      // acknowledged record so in-process writing can continue cleanly.
      recover_tail_to(good);
      throw;
    }
  }

  ++next_is_lsn_.at(wid);
  ++tail_records_;
  ++num_records_;
  if (tail_format_ == SegmentFormat::kV2Blocks) {
    const bool ended = activity == kEndActivity;
    tail_watermark_[wid] = ended ? 0 : next_is_lsn_.at(wid);
  }

  if (telemetry != nullptr) {
    telemetry->store_appends_total->inc();
    telemetry->store_flushes_total->inc();
    if (want_sync) telemetry->store_syncs_total->inc();
    telemetry->store_append_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
}

void LogStore::recover_tail_to(std::uintmax_t good_bytes) noexcept {
  const fs::path path = segment_path(segments_.size() - 1);
  try {
    tail_->close();
  } catch (...) {
    // Close failure does not prevent the truncate below.
  }
  tail_.reset();
  try {
    io_->truncate(path, good_bytes);
    tail_ = io_->open_append(path);
    tail_bytes_ = good_bytes;
  } catch (...) {
    poisoned_ = true;
  }
}

Log LogStore::load() const {
  WFLOG_SPAN(span, "store.load");
  if (span.active()) {
    span.arg("segments", static_cast<std::uint64_t>(segments_.size()));
    span.arg("records", static_cast<std::uint64_t>(num_records_));
  }
  Interner interner;
  std::vector<LogRecord> records;
  records.reserve(num_records_);
  const auto take = [&records](const LogRecord& l, std::string_view) {
    records.push_back(l);
  };
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    if (format_of(segments_[s]) == SegmentFormat::kV2Blocks) {
      const std::string data = read_whole_file(segment_path(s));
      if (const auto it = footers_.find(s); it != footers_.end()) {
        for (const BlockZone& zone : it->second.blocks) {
          for_each_payload_record(read_v2_block_payload(data, zone),
                                  interner, take);
          ++blocks_read_;
          WFLOG_TELEMETRY(t) { t->store_blocks_read_total->inc(); }
        }
      } else {
        const BlockScan scan = scan_v2_blocks(data);
        if (!scan.corrupt_reason.empty()) {
          throw IoError("LogStore: segment '" + segment_path(s).string() +
                        "' is corrupt: " + scan.corrupt_reason);
        }
        // A torn tail mid-session (in-process write failure) is benign —
        // exactly like v1's tolerated unterminated final line.
        for (const std::string& payload : scan.payloads) {
          for_each_payload_record(payload, interner, take);
          ++blocks_read_;
          WFLOG_TELEMETRY(t) { t->store_blocks_read_total->inc(); }
        }
      }
      continue;
    }
    std::ifstream seg(segment_path(s));
    if (!seg) {
      throw IoError("LogStore: missing segment '" +
                    segment_path(s).string() + "'");
    }
    std::string line;
    while (std::getline(seg, line)) {
      if (trim(line).empty()) continue;
      try {
        records.push_back(parse_store_line(trim(line), interner));
      } catch (const IoError&) {
        if (s + 1 == segments_.size() && seg.peek() == EOF) break;
        throw;
      }
    }
  }
  // Acknowledged records still buffered for the next block live only in
  // memory; a load() must see them (read-your-writes).
  for_each_payload_record(pending_.payload(), interner, take);
  return Log::from_records(std::move(records), std::move(interner));
}

LogStore::PrunedLoad LogStore::load_pruned(
    const std::vector<std::string>& required) const {
  WFLOG_SPAN(span, "store.load_pruned");
  PrunedLoad out;
  for (const auto& [s, footer] : footers_) {
    out.blocks_total += footer.blocks.size();
  }
  if (required.empty()) {
    // Nothing to prune against: every block is relevant.
    out.log = load();
    out.records_kept = out.log.size();
    out.blocks_read = out.blocks_total;
    return out;
  }
  out.pruned = true;

  Interner interner;
  // Per-segment record buckets keep global order without a sort; slot
  // segments_.size() holds the in-memory pending records.
  std::vector<std::vector<LogRecord>> buckets(segments_.size() + 1);

  // Pass 1: regions without zone maps — v1 segments, the unsealed v2
  // tail, the pending buffer — are read in full; their instances are
  // "opaque": candidates no zone map can rule out.
  WidIntervals opaque;
  const auto take_opaque = [&](std::size_t slot) {
    return [&, slot](const LogRecord& l, std::string_view) {
      opaque.add(l.wid, l.wid);
      buckets[slot].push_back(l);
    };
  };
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    if (format_of(segments_[s]) == SegmentFormat::kV2Blocks) {
      if (footers_.contains(s)) continue;  // zone-mapped: pass 3
      const BlockScan scan = scan_v2_blocks(read_whole_file(segment_path(s)));
      if (!scan.corrupt_reason.empty()) {
        throw IoError("LogStore: segment '" + segment_path(s).string() +
                      "' is corrupt: " + scan.corrupt_reason);
      }
      for (const std::string& payload : scan.payloads) {
        for_each_payload_record(payload, interner, take_opaque(s));
        ++blocks_read_;
        WFLOG_TELEMETRY(t) { t->store_blocks_read_total->inc(); }
      }
    } else {
      std::ifstream seg(segment_path(s));
      if (!seg) {
        throw IoError("LogStore: missing segment '" +
                      segment_path(s).string() + "'");
      }
      std::string line;
      while (std::getline(seg, line)) {
        if (trim(line).empty()) continue;
        try {
          take_opaque(s)(parse_store_line(trim(line), interner), line);
        } catch (const IoError&) {
          if (s + 1 == segments_.size() && seg.peek() == EOF) break;
          throw;
        }
      }
    }
  }
  for_each_payload_record(pending_.payload(), interner,
                          take_opaque(segments_.size()));
  opaque.normalize();

  // Pass 2: candidate instances. For each required activity, the
  // instances that could contain it are bounded by the wid ranges of the
  // zone-mapped blocks whose bloom admits it, plus every opaque instance.
  // An incident needs ALL required activities: intersect.
  WidIntervals candidates;
  bool first = true;
  for (const std::string& activity : required) {
    WidIntervals admits;
    for (const auto& [s, footer] : footers_) {
      for (const BlockZone& zone : footer.blocks) {
        if (zone.record_count == 0) continue;
        if (zone.bloom.may_contain(activity)) {
          admits.add(zone.wid_min, zone.wid_max);
        }
      }
    }
    admits.normalize();
    WidIntervals could = WidIntervals::unite(admits, opaque);
    candidates = first ? std::move(could)
                       : WidIntervals::intersect(candidates, could);
    first = false;
    if (candidates.empty()) break;
  }

  // Pass 3: read only the zone-mapped blocks whose wid range overlaps a
  // candidate; keep whole candidate instances.
  for (const auto& [s, footer] : footers_) {
    std::string data;
    bool loaded = false;
    for (const BlockZone& zone : footer.blocks) {
      if (zone.record_count != 0 &&
          candidates.overlaps(zone.wid_min, zone.wid_max)) {
        if (!loaded) {
          data = read_whole_file(segment_path(s));
          loaded = true;
        }
        for_each_payload_record(
            read_v2_block_payload(data, zone), interner,
            [&](const LogRecord& l, std::string_view) {
              if (candidates.contains(l.wid)) buckets[s].push_back(l);
            });
        ++out.blocks_read;
        ++blocks_read_;
        WFLOG_TELEMETRY(t) { t->store_blocks_read_total->inc(); }
      } else {
        ++out.blocks_skipped;
        ++blocks_skipped_;
        WFLOG_TELEMETRY(t) { t->store_blocks_skipped_total->inc(); }
      }
    }
  }

  // Assemble in global order; drop non-candidate opaque records; renumber
  // lsns so the result is a valid Log. Instance-local coordinates (wid,
  // is-lsn) — what incidents are made of — are untouched.
  std::vector<LogRecord> records;
  Lsn next_lsn = 1;
  for (std::vector<LogRecord>& bucket : buckets) {
    for (LogRecord& l : bucket) {
      if (!candidates.contains(l.wid)) continue;
      l.lsn = next_lsn++;
      records.push_back(std::move(l));
    }
  }
  out.records_kept = records.size();
  out.log = records.empty()
                ? Log::from_records_unchecked({}, std::move(interner))
                : Log::from_records(std::move(records), std::move(interner));
  if (span.active()) {
    span.arg("blocks_read", static_cast<std::uint64_t>(out.blocks_read));
    span.arg("blocks_skipped",
             static_cast<std::uint64_t>(out.blocks_skipped));
    span.arg("records_kept", static_cast<std::uint64_t>(out.records_kept));
  }
  return out;
}

LogStore::StorageStats LogStore::storage_stats() const {
  StorageStats stats;
  for (const std::string& name : segments_) {
    if (format_of(name) == SegmentFormat::kV2Blocks) {
      ++stats.segments_v2;
    } else {
      ++stats.segments_v1;
    }
  }
  for (const auto& [s, footer] : footers_) {
    stats.sealed_blocks += footer.blocks.size();
    for (const BlockZone& zone : footer.blocks) {
      stats.compressed_payload_bytes += zone.compressed_size;
      stats.uncompressed_payload_bytes += zone.uncompressed_size;
    }
  }
  for (const BlockZone& zone : tail_zones_) {
    stats.compressed_payload_bytes += zone.compressed_size;
    stats.uncompressed_payload_bytes += zone.uncompressed_size;
  }
  stats.blocks_read = blocks_read_;
  stats.blocks_skipped = blocks_skipped_;
  return stats;
}

LogStore::CompactionReport LogStore::compact(
    const std::filesystem::path& dir) {
  return compact(dir, Options{});
}

LogStore::CompactionReport LogStore::compact(
    const std::filesystem::path& dir, Options options) {
  WFLOG_SPAN(span, "store.compact");
  CompactionReport report;
  std::shared_ptr<FileIo> io =
      options.io != nullptr ? options.io : real_file_io();
  options.io = io;

  std::vector<std::string> old_names;
  std::size_t records_per_segment = 0;
  std::size_t base_id = 0;
  std::size_t block_target = 0;
  Log log = Log::from_records_unchecked({}, {});
  {
    LogStore store = open(dir, options);
    old_names = store.segments_;
    records_per_segment = store.options_.records_per_segment;
    block_target = store.options_.block_target_bytes;
    base_id = store.next_segment_id();
    report.segments_before = old_names.size();
    for (const std::string& name : old_names) {
      std::error_code ec;
      const std::uintmax_t size = fs::file_size(dir / name, ec);
      if (!ec) report.bytes_before += size;
    }
    if (store.num_records() == 0) {
      // Nothing to rewrite; leave the (empty) store untouched.
      report.segments_after = report.segments_before;
      report.bytes_after = report.bytes_before;
      return report;
    }
    log = store.load();
  }  // close the store before files move underneath it
  report.records = log.size();

  // Vacuum orphan segment files left by crashed rolls or compactions: any
  // seg-* file the manifest does not name is invisible to every reader.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("seg-")) continue;
    if (std::find(old_names.begin(), old_names.end(), name) !=
        old_names.end()) {
      continue;
    }
    io->remove(entry.path());
  }

  // Write the replacement segments: full blocks, sealed footers, fully
  // fsynced before the manifest swap makes any of them visible.
  std::vector<std::string> new_names;
  std::size_t next = 0;  // record index into the log
  while (next < log.size()) {
    const std::string name = segment_name(base_id + new_names.size(),
                                          SegmentFormat::kV2Blocks);
    std::string file{kSegV2FileMagic};
    SegmentFooter footer;
    std::map<Wid, IsLsn> watermark;
    BlockBuilder builder;
    std::size_t in_segment = 0;
    const auto cut_block = [&] {
      if (builder.empty()) return;
      EncodedBlock block = builder.encode(file.size());
      file += block.bytes;
      footer.blocks.push_back(std::move(block.zone));
      builder.clear();
      ++report.blocks_written;
      WFLOG_TELEMETRY(t) {
        t->store_blocks_written_total->inc();
        t->store_compressed_bytes_total->add(
            footer.blocks.back().compressed_size);
        t->store_uncompressed_bytes_total->add(
            footer.blocks.back().uncompressed_size);
      }
    };
    while (next < log.size() && in_segment < records_per_segment) {
      const LogRecord& l = log.record(static_cast<Lsn>(next + 1));
      const std::string_view activity = log.activity_name(l.activity);
      const std::string line = to_store_line(l, log.interner());
      builder.add(l, activity,
                  std::string_view(line).substr(0, line.size() - 1));
      watermark[l.wid] =
          activity == kEndActivity ? 0 : static_cast<IsLsn>(l.is_lsn + 1);
      ++in_segment;
      ++next;
      if (builder.payload_bytes() >= block_target) cut_block();
    }
    cut_block();
    footer.record_count = in_segment;
    for (const auto& [wid, next_is] : watermark) {
      footer.next_is_lsn.emplace_back(wid, next_is);
    }
    file += encode_v2_footer(footer);

    WriteFilePtr f = io->open_trunc(dir / name);
    std::size_t off = 0;
    std::size_t stalls = 0;
    while (off < file.size()) {
      const std::size_t n = f->write(std::string_view(file).substr(off));
      off += n;
      if (n == 0 && ++stalls > 8) {
        throw IoError("LogStore: compaction write made no progress");
      }
    }
    f->flush();
    f->sync();
    f->close();
    new_names.push_back(name);
  }
  io->sync_dir(dir);

  // The swap: after this rename + dir fsync, readers see only the new
  // segments; before it, only the old. Never a mix.
  write_manifest_file(*io, dir,
                      manifest_text(records_per_segment, new_names));

  for (const std::string& name : old_names) {
    io->remove(dir / name);
  }
  io->sync_dir(dir);

  report.segments_after = new_names.size();
  for (const std::string& name : new_names) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(dir / name, ec);
    if (!ec) report.bytes_after += size;
  }
  if (span.active()) {
    span.arg("records", static_cast<std::uint64_t>(report.records));
    span.arg("bytes_before",
             static_cast<std::uint64_t>(report.bytes_before));
    span.arg("bytes_after", static_cast<std::uint64_t>(report.bytes_after));
  }
  return report;
}

}  // namespace wflog
