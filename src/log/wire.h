#pragma once

// Little-endian integer framing helpers shared by the v2 segment format
// (log/segfmt.h) and its zone-map footer (log/zonemap.h). Explicit
// byte-by-byte packing: the on-disk format is defined independently of
// host endianness.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace wflog::wire {

inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Cursor over a serialized byte range; every read is bounds-checked and
/// underflow raises IoError (the caller maps it to corruption handling).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  std::string_view bytes(std::size_t n) {
    need(n);
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw IoError("wire: truncated structure (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(data_.size() - pos_) +
                    ")");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace wflog::wire
