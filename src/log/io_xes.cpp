#include "log/io_xes.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/text.h"

namespace wflog {
namespace {

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

void write_xml_escaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '&':
        out << "&amp;";
        break;
      case '<':
        out << "&lt;";
        break;
      case '>':
        out << "&gt;";
        break;
      case '"':
        out << "&quot;";
        break;
      case '\'':
        out << "&apos;";
        break;
      default:
        out << c;
    }
  }
}

void write_attribute(std::ostream& out, int indent, std::string_view key,
                     const Value& v) {
  for (int i = 0; i < indent; ++i) out << ' ';
  switch (v.kind()) {
    case ValueKind::kNull:
      out << "<string key=\"";
      write_xml_escaped(out, key);
      out << "\" value=\"\"/>\n";
      return;
    case ValueKind::kInt:
      out << "<int key=\"";
      write_xml_escaped(out, key);
      out << "\" value=\"" << v.as_int() << "\"/>\n";
      return;
    case ValueKind::kDouble:
      out << "<float key=\"";
      write_xml_escaped(out, key);
      out << "\" value=\"" << v.as_double() << "\"/>\n";
      return;
    case ValueKind::kBool:
      out << "<boolean key=\"";
      write_xml_escaped(out, key);
      out << "\" value=\"" << (v.as_bool() ? "true" : "false") << "\"/>\n";
      return;
    case ValueKind::kString:
      out << "<string key=\"";
      write_xml_escaped(out, key);
      out << "\" value=\"";
      write_xml_escaped(out, v.as_string());
      out << "\"/>\n";
      return;
  }
}

// ----------------------------------------------------------------------
// Parsing: a minimal XML pull scanner sufficient for XES
// ----------------------------------------------------------------------

struct XmlTag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;       // </name>
  bool self_closing = false;  // <name ... />
};

class XmlScanner {
 public:
  explicit XmlScanner(std::string_view text) : text_(text) {}

  /// Returns the next tag, skipping text content, comments, processing
  /// instructions and declarations. False at end of input.
  bool next(XmlTag& tag) {
    while (true) {
      const std::size_t lt = text_.find('<', pos_);
      if (lt == std::string_view::npos) return false;
      pos_ = lt + 1;
      if (text_.compare(pos_, 3, "!--") == 0) {
        const std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (pos_ < text_.size() && (text_[pos_] == '?' || text_[pos_] == '!')) {
        const std::size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) fail("unterminated declaration");
        pos_ = end + 1;
        continue;
      }
      return parse_tag(tag);
    }
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw IoError("XES: " + msg + " (byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string name_token() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == ':' || text_[pos_] == '.' || text_[pos_] == '-' ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      const std::size_t semi = s.find(';', i);
      if (semi == std::string_view::npos) fail("bad entity");
      const std::string_view ent = s.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else {
        fail("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi;
    }
    return out;
  }

  bool parse_tag(XmlTag& tag) {
    tag = XmlTag{};
    if (pos_ < text_.size() && text_[pos_] == '/') {
      tag.closing = true;
      ++pos_;
    }
    tag.name = name_token();
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) fail("unterminated tag");
      if (text_[pos_] == '>') {
        ++pos_;
        return true;
      }
      if (text_[pos_] == '/') {
        ++pos_;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '>') fail("expected '>'");
        ++pos_;
        tag.self_closing = true;
        return true;
      }
      const std::string key = name_token();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '=') fail("expected '='");
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        fail("expected quoted attribute value");
      }
      const char quote = text_[pos_++];
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute");
      tag.attrs[key] = unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value typed_value(const std::string& element, const std::string& raw) {
  if (element == "int") {
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
    if (ec != std::errc{} || p != raw.data() + raw.size()) {
      throw IoError("XES: invalid int value '" + raw + "'");
    }
    return Value{v};
  }
  if (element == "float") {
    double v = 0;
    auto [p, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
    if (ec != std::errc{} || p != raw.data() + raw.size()) {
      throw IoError("XES: invalid float value '" + raw + "'");
    }
    return Value{v};
  }
  if (element == "boolean") {
    if (raw == "true") return Value{true};
    if (raw == "false") return Value{false};
    throw IoError("XES: invalid boolean value '" + raw + "'");
  }
  // string / date / id / unknown typed tags: keep as string (empty = null).
  if (raw.empty()) return Value{};
  return Value{raw};
}

}  // namespace

void write_xes(const Log& log, std::ostream& out) {
  // Group records per instance, preserving is-lsn order.
  std::map<Wid, std::vector<const LogRecord*>> traces;
  std::map<Wid, Lsn> start_lsns;
  std::map<Wid, Lsn> end_lsns;
  for (const LogRecord& l : log) {
    if (l.activity == log.start_symbol()) {
      traces[l.wid];  // ensure the trace exists even if empty
      start_lsns[l.wid] = l.lsn;
      continue;
    }
    if (l.activity == log.end_symbol()) {
      end_lsns[l.wid] = l.lsn;
      continue;
    }
    traces[l.wid].push_back(&l);
  }

  const Interner& interner = log.interner();
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<log xes.version=\"1.0\" xmlns=\"http://www.xes-standard.org/\">\n"
      << "  <extension name=\"Concept\" prefix=\"concept\" "
         "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  for (const auto& [wid, records] : traces) {
    out << "  <trace>\n";
    out << "    <string key=\"concept:name\" value=\"" << wid << "\"/>\n";
    out << "    <boolean key=\"wflog:completed\" value=\""
        << (end_lsns.contains(wid) ? "true" : "false") << "\"/>\n";
    out << "    <int key=\"wflog:start_lsn\" value=\"" << start_lsns[wid]
        << "\"/>\n";
    if (end_lsns.contains(wid)) {
      out << "    <int key=\"wflog:end_lsn\" value=\"" << end_lsns[wid]
          << "\"/>\n";
    }
    for (const LogRecord* l : records) {
      out << "    <event>\n";
      out << "      <string key=\"concept:name\" value=\"";
      write_xml_escaped(out, interner.name(l->activity));
      out << "\"/>\n";
      out << "      <int key=\"wflog:lsn\" value=\"" << l->lsn << "\"/>\n";
      for (const AttrEntry& e : l->in) {
        write_attribute(out, 6,
                        "wflog:in:" + std::string(interner.name(e.attr)),
                        e.value);
      }
      for (const AttrEntry& e : l->out) {
        write_attribute(out, 6,
                        "wflog:out:" + std::string(interner.name(e.attr)),
                        e.value);
      }
      out << "    </event>\n";
    }
    out << "  </trace>\n";
  }
  out << "</log>\n";
}

std::string to_xes(const Log& log) {
  std::ostringstream os;
  write_xes(log, os);
  return os.str();
}

Log read_xes(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return xes_to_log(buffer.str());
}

Log xes_to_log(const std::string& text) {
  XmlScanner scanner(text);

  struct PendingEvent {
    std::string activity;
    Lsn lsn = 0;  // 0 = no wflog:lsn hint
    AttrMap in;
    AttrMap out;
  };
  struct PendingTrace {
    std::string name;
    bool completed = false;
    Lsn start_lsn = 0;
    Lsn end_lsn = 0;
    std::vector<PendingEvent> events;
  };

  Interner interner;
  std::vector<PendingTrace> traces;
  PendingTrace* trace = nullptr;
  PendingEvent* event = nullptr;
  bool saw_log = false;

  XmlTag tag;
  while (scanner.next(tag)) {
    if (tag.name == "log" && !tag.closing) {
      saw_log = true;
    } else if (tag.name == "trace") {
      if (tag.closing) {
        trace = nullptr;
      } else {
        traces.emplace_back();
        trace = &traces.back();
      }
    } else if (tag.name == "event") {
      if (trace == nullptr && !tag.closing) {
        throw IoError("XES: <event> outside <trace>");
      }
      if (tag.closing) {
        event = nullptr;
      } else {
        trace->events.emplace_back();
        event = &trace->events.back();
        if (tag.self_closing) event = nullptr;
      }
    } else if (tag.name == "string" || tag.name == "int" ||
               tag.name == "float" || tag.name == "boolean" ||
               tag.name == "date" || tag.name == "id") {
      if (tag.closing) continue;
      auto key_it = tag.attrs.find("key");
      auto value_it = tag.attrs.find("value");
      if (key_it == tag.attrs.end() || value_it == tag.attrs.end()) continue;
      const std::string& key = key_it->second;
      const std::string& raw = value_it->second;
      if (event != nullptr) {
        if (key == "concept:name") {
          event->activity = raw;
        } else if (key == "wflog:lsn") {
          event->lsn = static_cast<Lsn>(std::stoull(raw));
        } else if (key.starts_with("wflog:in:")) {
          event->in.set(interner.intern(key.substr(9)),
                        typed_value(tag.name, raw));
        } else if (key.starts_with("wflog:out:")) {
          event->out.set(interner.intern(key.substr(10)),
                         typed_value(tag.name, raw));
        }
        // other event attributes (timestamps, resources): ignored
      } else if (trace != nullptr) {
        if (key == "concept:name") {
          trace->name = raw;
        } else if (key == "wflog:completed") {
          trace->completed = raw == "true";
        } else if (key == "wflog:start_lsn") {
          trace->start_lsn = static_cast<Lsn>(std::stoull(raw));
        } else if (key == "wflog:end_lsn") {
          trace->end_lsn = static_cast<Lsn>(std::stoull(raw));
        }
      }
    }
    // all other elements (extension, global, classifier): ignored
  }
  if (!saw_log) throw IoError("XES: no <log> element");
  if (traces.empty()) throw IoError("XES: no traces");

  // Assign wids: numeric concept:name when available and unique, else
  // sequential.
  std::vector<Wid> wids(traces.size());
  {
    bool numeric = true;
    std::vector<Wid> parsed(traces.size());
    for (std::size_t i = 0; i < traces.size() && numeric; ++i) {
      const std::string& name = traces[i].name;
      Wid w = 0;
      auto [p, ec] =
          std::from_chars(name.data(), name.data() + name.size(), w);
      numeric = !name.empty() && ec == std::errc{} &&
                p == name.data() + name.size();
      parsed[i] = w;
    }
    if (numeric) {
      std::vector<Wid> sorted = parsed;
      std::sort(sorted.begin(), sorted.end());
      numeric = std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end();
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      wids[i] = numeric ? 0 : static_cast<Wid>(i + 1);
    }
    if (numeric) {
      for (std::size_t i = 0; i < traces.size(); ++i) {
        std::from_chars(traces[i].name.data(),
                        traces[i].name.data() + traces[i].name.size(),
                        wids[i]);
      }
    }
  }

  // Emit records: START, the events, END (when completed). Global order
  // follows the wflog:lsn hints when every event has one, else traces are
  // concatenated.
  const Symbol start_sym = interner.intern(kStartActivity);
  const Symbol end_sym = interner.intern(kEndActivity);

  struct Keyed {
    Lsn hint;       // original-order key
    LogRecord record;
  };
  std::vector<Keyed> keyed;
  bool all_hinted = true;
  for (const PendingTrace& t : traces) {
    for (const PendingEvent& e : t.events) {
      all_hinted = all_hinted && e.lsn != 0;
    }
  }

  Lsn synthetic = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const PendingTrace& t = traces[i];
    IsLsn next = 1;
    // START placement: its exported lsn when present, else just before the
    // first event (stable sort keeps it in front on key ties).
    Lsn first_key = all_hinted
                        ? (t.start_lsn != 0
                               ? t.start_lsn
                               : (t.events.empty() ? ++synthetic
                                                   : t.events.front().lsn))
                        : ++synthetic;
    keyed.push_back(
        Keyed{first_key, LogRecord{0, wids[i], next++, start_sym, {}, {}}});
    Lsn last_key = first_key;
    for (const PendingEvent& e : t.events) {
      if (e.activity.empty()) {
        throw IoError("XES: event without concept:name in trace '" +
                      t.name + "'");
      }
      const Lsn key = all_hinted ? e.lsn : ++synthetic;
      LogRecord l;
      l.wid = wids[i];
      l.is_lsn = next++;
      l.activity = interner.intern(e.activity);
      l.in = e.in;
      l.out = e.out;
      keyed.push_back(Keyed{key, std::move(l)});
      last_key = key;
    }
    if (t.completed) {
      const Lsn end_key =
          all_hinted && t.end_lsn != 0 ? t.end_lsn : last_key;
      keyed.push_back(Keyed{end_key, LogRecord{0, wids[i], next++, end_sym,
                                               {}, {}}});
    }
  }

  // Stable sort by key: START (same key as first event) stays before it,
  // END (same key as last event) after it.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     return a.hint < b.hint;
                   });
  std::vector<LogRecord> records;
  records.reserve(keyed.size());
  for (Keyed& k : keyed) {
    k.record.lsn = static_cast<Lsn>(records.size() + 1);
    records.push_back(std::move(k.record));
  }
  return Log::from_records(std::move(records), std::move(interner));
}

}  // namespace wflog
