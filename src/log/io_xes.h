#pragma once

// XES (IEEE 1849) import/export — the interchange format of the process-
// mining ecosystem (ProM, Disco, PM4Py, ...). Supporting it lets this
// engine query logs exported by standard tooling and feed its simulated
// workloads to that tooling.
//
// Mapping. XES organises a log as <trace> elements (one per case/workflow
// instance) containing <event> elements. We map:
//   trace  "concept:name"               <-> wid (stringified)
//   event  "concept:name"               <-> activity name
//   event  "wflog:in:<attr>"            <-> αin bindings
//   event  "wflog:out:<attr>"           <-> αout bindings
// Values use the typed XES attribute tags (<string>, <int>, <float>,
// <boolean>). START/END sentinel records are not exported (XES has no
// such convention); they are re-synthesized on import, so a round trip
// reproduces the original log exactly for completed instances and
// instances are considered complete iff the trace carried a
// "wflog:completed" marker (written on export).
//
// The parser covers the XES subset this exporter emits plus the common
// output of other tools (unknown attributes are ignored; events lacking
// concept:name are rejected).

#include <iosfwd>
#include <string>

#include "log/log.h"

namespace wflog {

void write_xes(const Log& log, std::ostream& out);
std::string to_xes(const Log& log);

Log read_xes(std::istream& in);
Log xes_to_log(const std::string& text);

}  // namespace wflog
