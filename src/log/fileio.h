#pragma once

// The injectable file-IO seam under LogStore's write path.
//
// Every byte LogStore persists — record lines, manifest rewrites, tail
// truncations — flows through a FileIo, so the crash-torture harness
// (tests/store_torture_test.cpp) can substitute a FaultIo that fails,
// short-writes, or "crashes" at the Nth operation and prove the recovery
// path sound at every IO boundary. Production code uses real_file_io(),
// a POSIX implementation whose sync() is a genuine fsync.
//
// The read path (recovery scans, load()) stays on plain ifstreams: faults
// are injected on writes, and the crash model applies its data loss to the
// real files, so readers observe it naturally.
//
// Durability model: file *contents* become durable on sync(); directory
// *entries* (a freshly created file, a rename) become durable only once the
// parent directory is fsynced via FileIo::sync_dir. FaultIo models the
// rename half strictly — an un-dir-fsynced rename may be rolled back to the
// pre-rename directory state by a crash (see CrashLoss) — which is exactly
// the window LogStore closes by calling sync_dir after every manifest
// rename and segment creation.

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wflog {

/// A writable file handle. write() may be short (return < data.size())
/// without error — callers loop; hard failures throw IoError. Destructors
/// close best-effort and never throw.
class WriteFile {
 public:
  virtual ~WriteFile() = default;

  /// Appends at the current position; returns bytes accepted (possibly
  /// fewer than data.size()). Throws IoError on hard failure.
  virtual std::size_t write(std::string_view data) = 0;
  /// Pushes user-space buffers to the OS. Throws IoError on failure.
  virtual void flush() = 0;
  /// Forces OS buffers to stable storage (fsync). Throws IoError.
  virtual void sync() = 0;
  /// Flushes and closes. Throws IoError; the destructor closes silently.
  virtual void close() = 0;
};

using WriteFilePtr = std::unique_ptr<WriteFile>;

/// The write-path operations LogStore needs from a filesystem.
class FileIo {
 public:
  virtual ~FileIo() = default;

  /// Opens `path` for appending, creating it if missing.
  virtual WriteFilePtr open_append(const std::filesystem::path& path) = 0;
  /// Opens `path` truncated to empty, creating it if missing.
  virtual WriteFilePtr open_trunc(const std::filesystem::path& path) = 0;
  /// Atomically replaces `to` with `from`.
  virtual void rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) = 0;
  /// Truncates `path` to `size` bytes.
  virtual void truncate(const std::filesystem::path& path,
                        std::uintmax_t size) = 0;
  /// Deletes `path` (no error if absent).
  virtual void remove(const std::filesystem::path& path) = 0;
  /// Fsyncs the directory itself, making the entries it holds — created
  /// files, renames — durable. Throws IoError on failure.
  virtual void sync_dir(const std::filesystem::path& dir) = 0;
};

/// The process-wide real (POSIX) implementation.
std::shared_ptr<FileIo> real_file_io();

/// A programmable fault-injecting FileIo for the robustness tests. Wraps a
/// base FileIo (the real one by default), counts every operation — writes,
/// flushes, syncs, opens, renames, truncates — and triggers the configured
/// fault when the counter reaches Fault::at_op:
///
///   kError       ops [at_op, at_op + count) throw IoError, later ops
///                succeed — a transient failure the store's bounded
///                retry should absorb. count = kSticky models ENOSPC:
///                every op from at_op on fails.
///   kShortWrite  the at_op'th operation, if a write, accepts only half
///                its bytes (no error) — exercises the continuation loop.
///   kCrash       simulated power loss at the at_op'th boundary: the op
///                does not happen, unsynced bytes are lost per CrashLoss,
///                and every subsequent op throws — the harness then
///                reopens the directory with real IO (or calls
///                clear_fault() to "restore power" and reopen in place).
///
/// Thread-safe: the store serializes its own writes, but the server
/// torture harness arms/clears faults and reads counters from the test
/// thread while wfqd's ingest path is writing — all state is mutex-
/// guarded (the wrapped real IO runs outside any interesting window; it
/// is only ever driven by one store operation at a time).
class FaultIo : public FileIo {
 public:
  /// What survives of a file's un-fsynced suffix when a crash fires.
  enum class CrashLoss {
    kKeepAll,       // process crash: OS page cache survives
    kDropUnsynced,  // power loss, worst case: only fsynced bytes survive
    kTornHalf,      // power loss mid-flush: half the unsynced bytes, torn
  };

  struct Fault {
    static constexpr std::uint64_t kSticky = ~std::uint64_t{0};

    std::uint64_t at_op = 0;  // 1-based op index; 0 disables
    enum class Kind { kError, kShortWrite, kCrash } kind = Kind::kError;
    std::uint64_t count = 1;  // kError: consecutive failing ops (kSticky = forever)
    CrashLoss loss = CrashLoss::kDropUnsynced;  // kCrash
  };

  explicit FaultIo(std::shared_ptr<FileIo> base = nullptr);

  void set_fault(Fault fault) {
    const std::lock_guard<std::mutex> lock(mu_);
    fault_ = fault;
  }
  /// Disarms the fault and clears the crashed latch — "the disk came
  /// back / power was restored". Durable high-water marks survive (the
  /// crash already applied its loss to the real files); the op counter
  /// keeps running. The next store reopen through this IO then succeeds.
  void clear_fault() {
    const std::lock_guard<std::mutex> lock(mu_);
    fault_ = Fault{};
    crashed_ = false;
  }
  /// Operations observed so far (a fault-free dry run measures a
  /// workload's op count; the torture matrix then crashes at each index).
  std::uint64_t ops() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return ops_;
  }
  bool crashed() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  /// Names of every op observed, in order; op N (1-based) is
  /// op_trace()[N-1]. Lets tests aim a crash at a specific boundary, e.g.
  /// the sync_dir immediately after a manifest rename.
  std::vector<std::string> op_trace() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }

  WriteFilePtr open_append(const std::filesystem::path& path) override;
  WriteFilePtr open_trunc(const std::filesystem::path& path) override;
  void rename(const std::filesystem::path& from,
              const std::filesystem::path& to) override;
  void truncate(const std::filesystem::path& path,
                std::uintmax_t size) override;
  void remove(const std::filesystem::path& path) override;
  void sync_dir(const std::filesystem::path& dir) override;

 private:
  friend class FaultWriteFile;

  /// A rename that has happened on the real filesystem but whose directory
  /// entry is not yet durable (no sync_dir on the parent since). A crash
  /// rolls it back: `to` regains its pre-rename content (or vanishes) and
  /// `from` reappears with the renamed bytes.
  struct PendingRename {
    std::filesystem::path from;
    std::filesystem::path to;
    bool to_existed = false;
    std::string old_to_content;  // valid when to_existed
  };

  /// Counts one op; throws per the configured fault. Returns true when the
  /// op should short-write.
  bool on_op(const char* what);
  void apply_crash_loss();
  void note_synced(const std::filesystem::path& path);

  std::shared_ptr<FileIo> base_;
  mutable std::mutex mu_;  // guards everything below
  Fault fault_;
  std::uint64_t ops_ = 0;
  bool crashed_ = false;
  std::vector<std::string> trace_;
  // Durable (fsynced) size per path touched through this IO. Writes go
  // straight to the real file; a crash truncates back to these marks.
  std::map<std::filesystem::path, std::uintmax_t> durable_;
  // Renames not yet committed by a parent-directory fsync, oldest first.
  std::vector<PendingRename> pending_renames_;
};

}  // namespace wflog
