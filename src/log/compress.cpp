#include "log/compress.h"

#include <algorithm>
#include <array>
#include <vector>

namespace wflog {
namespace {

// ----- RFC 1951 fixed tables -----------------------------------------------

// Length codes 257..285: base match length and extra bits.
constexpr std::array<std::uint16_t, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLenExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29: base distance and extra bits.
constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,    9,    13,    17,    25,
    33,   49,   65,   97,   129,  193,  257,  385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2,  2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

constexpr std::size_t kWindowSize = 32768;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;

/// Reverses the low `len` bits of `code` — deflate stores Huffman codes
/// MSB-first while the bitstream packs LSB-first.
std::uint32_t bit_reverse(std::uint32_t code, unsigned len) {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < len; ++i) {
    out = (out << 1) | ((code >> i) & 1u);
  }
  return out;
}

struct HuffCode {
  std::uint16_t code = 0;
  std::uint8_t len = 0;
};

/// Fixed litlen code for symbol `sym` (0..287): canonical code + length.
HuffCode fixed_litlen_code(unsigned sym) {
  if (sym <= 143) return {static_cast<std::uint16_t>(0x30 + sym), 8};
  if (sym <= 255) return {static_cast<std::uint16_t>(0x190 + (sym - 144)), 9};
  if (sym <= 279) return {static_cast<std::uint16_t>(sym - 256), 7};
  return {static_cast<std::uint16_t>(0xC0 + (sym - 280)), 8};
}

// ----- bit IO ---------------------------------------------------------------

class BitWriter {
 public:
  explicit BitWriter(std::string& out) : out_(out) {}

  /// Appends the low `n` bits of `value`, LSB first.
  void write_bits(std::uint32_t value, unsigned n) {
    acc_ |= static_cast<std::uint64_t>(value & ((1u << n) - 1u)) << filled_;
    filled_ += n;
    while (filled_ >= 8) {
      out_.push_back(static_cast<char>(acc_ & 0xFFu));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Huffman codes are emitted MSB-first: reverse then write.
  void write_huffman(std::uint32_t code, unsigned len) {
    write_bits(bit_reverse(code, len), len);
  }

  /// Flushes any partial final byte (zero-padded).
  void finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<char>(acc_ & 0xFFu));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::string& out_;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  std::uint32_t read_bits(unsigned n) {
    fill();
    if (filled_ < n) {
      throw InflateError("inflate: truncated stream (out of input bits)");
    }
    const std::uint32_t value =
        static_cast<std::uint32_t>(acc_ & ((1u << n) - 1u));
    consume(n);
    return value;
  }

  /// Returns the next up-to-`n` bits without consuming them, zero-padded
  /// past end of input. `avail` reports how many of them are real.
  std::uint32_t peek_bits(unsigned n, unsigned& avail) {
    fill();
    avail = std::min<unsigned>(filled_, n);
    return static_cast<std::uint32_t>(acc_ & ((1u << n) - 1u));
  }

  /// Drops `n` already-peeked bits. Caller must ensure n <= filled bits.
  void consume(unsigned n) {
    acc_ >>= n;
    filled_ -= n;
  }

  /// Drops bits up to the next byte boundary (stored-block alignment).
  void align_to_byte() { consume(filled_ % 8); }

  /// Reads `n` raw bytes; requires byte alignment.
  std::string read_bytes(std::size_t n) {
    std::string out;
    out.reserve(n);
    // Drain whole bytes already buffered in the accumulator first.
    while (n > 0 && filled_ >= 8) {
      out.push_back(static_cast<char>(acc_ & 0xFFu));
      consume(8);
      --n;
    }
    if (data_.size() - pos_ < n) {
      throw InflateError("inflate: truncated stored block");
    }
    out.append(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// True when fewer than 8 bits of input remain — i.e. nothing but the
  /// zero padding of the final byte. Whole unconsumed bytes are garbage.
  bool exhausted() const {
    return (data_.size() - pos_) * 8 + filled_ < 8;
  }

 private:
  void fill() {
    while (filled_ <= 56 && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(data_[pos_++]))
              << filled_;
      filled_ += 8;
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

// ----- compressor -----------------------------------------------------------

unsigned length_symbol(std::size_t len) {
  // Largest code whose base <= len; scan from the top (once per match).
  for (unsigned i = static_cast<unsigned>(kLenBase.size()); i-- > 0;) {
    if (kLenBase[i] <= len) return i;
  }
  return 0;
}

unsigned distance_symbol(std::size_t dist) {
  for (unsigned i = static_cast<unsigned>(kDistBase.size()); i-- > 0;) {
    if (kDistBase[i] <= dist) return i;
  }
  return 0;
}

void emit_literal(BitWriter& bw, unsigned char byte) {
  const HuffCode c = fixed_litlen_code(byte);
  bw.write_huffman(c.code, c.len);
}

void emit_match(BitWriter& bw, std::size_t len, std::size_t dist) {
  const unsigned ls = length_symbol(len);
  const HuffCode c = fixed_litlen_code(257 + ls);
  bw.write_huffman(c.code, c.len);
  if (kLenExtra[ls] > 0) {
    bw.write_bits(static_cast<std::uint32_t>(len - kLenBase[ls]),
                  kLenExtra[ls]);
  }
  const unsigned ds = distance_symbol(dist);
  bw.write_huffman(ds, 5);
  if (kDistExtra[ds] > 0) {
    bw.write_bits(static_cast<std::uint32_t>(dist - kDistBase[ds]),
                  kDistExtra[ds]);
  }
}

/// One fixed-Huffman final block over the whole input. Greedy LZ77 with a
/// 3-byte hash head + prev chain, bounded chain walks.
std::string deflate_fixed(std::string_view data) {
  std::string out;
  out.reserve(data.size() / 2 + 16);
  BitWriter bw(out);
  bw.write_bits(1, 1);  // BFINAL
  bw.write_bits(1, 2);  // BTYPE 01: fixed Huffman

  constexpr std::size_t kHashBits = 15;
  constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
  constexpr std::size_t kMaxChain = 128;
  const std::size_t n = data.size();
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(n, -1);
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());

  const auto hash3 = [bytes](std::size_t i) {
    const std::uint32_t h = (static_cast<std::uint32_t>(bytes[i]) << 16) ^
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8) ^
                            static_cast<std::uint32_t>(bytes[i + 2]);
    return (h * 2654435761u) >> (32 - kHashBits);
  };
  const auto insert = [&](std::size_t i) {
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash3(i);
      prev[i] = head[h];
      head[h] = static_cast<std::int32_t>(i);
    }
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      std::int32_t cand = head[hash3(i)];
      const std::size_t limit = std::min(kMaxMatch, n - i);
      std::size_t chain = 0;
      while (cand >= 0 && chain < kMaxChain) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t dist = i - c;
        if (dist > kWindowSize) break;  // chain entries only get older
        std::size_t len = 0;
        while (len < limit && bytes[c + len] == bytes[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
        cand = prev[c];
        ++chain;
      }
    }

    if (best_len >= kMinMatch) {
      emit_match(bw, best_len, best_dist);
      // Insert every matched position so later data can reference into it.
      for (const std::size_t end = i + best_len; i < end; ++i) insert(i);
    } else {
      emit_literal(bw, bytes[i]);
      insert(i);
      ++i;
    }
  }

  const HuffCode eob = fixed_litlen_code(256);
  bw.write_huffman(eob.code, eob.len);
  bw.finish();
  return out;
}

/// Stored (BTYPE 00) stream: 5 bytes of framing per 65535-byte chunk.
std::string deflate_stored(std::string_view data) {
  std::string out;
  out.reserve(data.size() + data.size() / 65535 * 5 + 8);
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(data.size() - pos, 65535);
    const bool final_block = pos + chunk == data.size();
    out.push_back(final_block ? 1 : 0);  // BFINAL + BTYPE 00, byte-aligned
    const auto len = static_cast<std::uint16_t>(chunk);
    out.push_back(static_cast<char>(len & 0xFF));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(~len & 0xFF));
    out.push_back(static_cast<char>((~len >> 8) & 0xFF));
    out.append(data.substr(pos, chunk));
    pos += chunk;
  } while (pos < data.size());
  return out;
}

// ----- decoder --------------------------------------------------------------

/// Direct-lookup decode table for the fixed litlen alphabet: index by the
/// next 9 stream bits (LSB-first as read), get symbol + code length.
struct LitlenEntry {
  std::uint16_t symbol = 0;
  std::uint8_t len = 0;
};

const std::array<LitlenEntry, 512>& fixed_litlen_table() {
  static const std::array<LitlenEntry, 512> table = [] {
    std::array<LitlenEntry, 512> t{};
    for (unsigned sym = 0; sym < 288; ++sym) {
      const HuffCode c = fixed_litlen_code(sym);
      // The code occupies the low c.len bits (reversed); every setting of
      // the remaining high bits maps to the same symbol.
      const std::uint32_t rev = bit_reverse(c.code, c.len);
      for (std::uint32_t high = 0; high < (1u << (9 - c.len)); ++high) {
        t[(high << c.len) | rev] = {static_cast<std::uint16_t>(sym), c.len};
      }
    }
    return t;
  }();
  return table;
}

void inflate_fixed_block(BitReader& br, std::string& out,
                         std::size_t expected_size) {
  const auto& table = fixed_litlen_table();
  for (;;) {
    unsigned avail = 0;
    const std::uint32_t peek = br.peek_bits(9, avail);
    const LitlenEntry e = table[peek & 0x1FF];
    if (e.len > avail) {
      throw InflateError("inflate: truncated stream mid-symbol");
    }
    br.consume(e.len);
    const unsigned sym = e.symbol;
    if (sym < 256) {
      out.push_back(static_cast<char>(sym));
    } else if (sym == 256) {
      return;  // end of block
    } else {
      const unsigned ls = sym - 257;
      if (ls >= kLenBase.size()) {
        throw InflateError("inflate: reserved length code " +
                           std::to_string(sym));
      }
      std::size_t len = kLenBase[ls];
      if (kLenExtra[ls] > 0) len += br.read_bits(kLenExtra[ls]);
      // Distance codes are 5-bit fixed Huffman codes, MSB-first.
      const unsigned ds = bit_reverse(br.read_bits(5), 5);
      if (ds >= kDistBase.size()) {
        throw InflateError("inflate: reserved distance code " +
                           std::to_string(ds));
      }
      std::size_t dist = kDistBase[ds];
      if (kDistExtra[ds] > 0) dist += br.read_bits(kDistExtra[ds]);
      if (dist > out.size()) {
        throw InflateError(
            "inflate: back-reference before start of output (dist " +
            std::to_string(dist) + ", have " + std::to_string(out.size()) +
            ")");
      }
      // Byte-by-byte: overlapping references (dist < len) deliberately
      // reuse just-written bytes.
      const std::size_t start = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[start + k]);
      }
    }
    if (out.size() > expected_size) {
      throw InflateError("inflate: output exceeds declared size " +
                         std::to_string(expected_size));
    }
  }
}

}  // namespace

std::string deflate_compress(std::string_view data) {
  std::string fixed = deflate_fixed(data);
  if (fixed.size() > data.size() + 5) {
    return deflate_stored(data);
  }
  return fixed;
}

std::string deflate_decompress(std::string_view data,
                               std::size_t expected_size) {
  std::string out;
  out.reserve(expected_size);
  BitReader br(data);
  bool final_block = false;
  while (!final_block) {
    final_block = br.read_bits(1) != 0;
    const std::uint32_t btype = br.read_bits(2);
    switch (btype) {
      case 0: {  // stored
        br.align_to_byte();
        const std::string hdr = br.read_bytes(4);
        const auto byte_at = [&](int i) {
          return static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[i]));
        };
        const auto len =
            static_cast<std::uint16_t>(byte_at(0) | byte_at(1) << 8);
        const auto nlen =
            static_cast<std::uint16_t>(byte_at(2) | byte_at(3) << 8);
        if (static_cast<std::uint16_t>(~len) != nlen) {
          throw InflateError("inflate: stored block LEN/~LEN mismatch");
        }
        if (out.size() + len > expected_size) {
          throw InflateError("inflate: output exceeds declared size " +
                             std::to_string(expected_size));
        }
        out.append(br.read_bytes(len));
        break;
      }
      case 1:  // fixed Huffman
        inflate_fixed_block(br, out, expected_size);
        break;
      case 2:
        throw InflateError(
            "inflate: dynamic-Huffman block (not produced by this writer)");
      default:
        throw InflateError("inflate: reserved block type 3");
    }
  }
  if (!br.exhausted()) {
    throw InflateError("inflate: trailing garbage after final block");
  }
  if (out.size() != expected_size) {
    throw InflateError("inflate: output size " + std::to_string(out.size()) +
                       " != declared " + std::to_string(expected_size));
  }
  return out;
}

}  // namespace wflog
