#include "log/log.h"

#include <algorithm>
#include <unordered_set>

#include "log/validate.h"

namespace wflog {

Log::Log(std::vector<LogRecord> records, Interner interner)
    : records_(std::move(records)),
      interner_(std::make_unique<Interner>(std::move(interner))) {
  start_sym_ = interner_->find(kStartActivity);
  end_sym_ = interner_->find(kEndActivity);
  std::unordered_set<Wid> seen;
  for (const LogRecord& l : records_) {
    if (seen.insert(l.wid).second) wids_.push_back(l.wid);
  }
}

Log Log::from_records(std::vector<LogRecord> records, Interner interner) {
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  validate_well_formed(records, interner);
  return Log(std::move(records), std::move(interner));
}

Log Log::from_records_unchecked(std::vector<LogRecord> records,
                                Interner interner) {
  return Log(std::move(records), std::move(interner));
}

}  // namespace wflog
