#pragma once

// Zone maps for the v2 segment format (log/segfmt.h).
//
// Each compressed block in a sealed v2 segment is summarized by a
// BlockZone: wid and lsn min/max, record/byte counts, and an
// activity-presence bloom filter. The zones live in the segment footer, so
// a reader can decide which blocks could possibly contain records relevant
// to a query — and skip inflating the rest — without touching the block
// payloads at all.
//
// The pruning contract is one-sided: a zone map may claim a block is
// relevant when it is not (bloom false positive, wid range overlap), but
// it must never hide a relevant block. The pruner in log/segfmt.h builds
// on that: for every activity a query *requires*, the set of workflow
// instances that could match is bounded by the blocks whose bloom admits
// that activity; instances outside the intersection of those bounds cannot
// produce incidents.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wflog {

/// Activity-presence bloom filter. Fixed k = 4 probes via double hashing
/// (FNV-1a 64 + splitmix64 remix); sized at build time from the number of
/// distinct activities in the block, minimum 64 bits, power-of-two bits so
/// probe reduction is a mask.
class ActivityBloom {
 public:
  static constexpr unsigned kHashes = 4;

  /// Filter sized for ~`distinct` distinct keys (16 bits per key, floor 64
  /// bits → false-positive rate well under 1% at k = 4).
  static ActivityBloom sized_for(std::size_t distinct);

  /// Reconstructs a filter from serialized words (must be a power of two).
  static ActivityBloom from_words(std::vector<std::uint64_t> words);

  void add(std::string_view activity);

  /// False ⇒ the activity is definitely absent from the block.
  bool may_contain(std::string_view activity) const;

  const std::vector<std::uint64_t>& words() const noexcept { return words_; }
  std::size_t num_bits() const noexcept { return words_.size() * 64; }

 private:
  explicit ActivityBloom(std::size_t num_words);

  std::vector<std::uint64_t> words_;
  std::uint64_t bit_mask_ = 0;  // total bits - 1
};

/// Summary of one compressed block, stored in the segment footer.
struct BlockZone {
  std::uint64_t file_offset = 0;      ///< block header start in the file
  std::uint32_t compressed_size = 0;  ///< payload bytes on disk
  std::uint32_t uncompressed_size = 0;
  std::uint32_t codec = 0;  ///< segfmt codec id (raw / deflate)
  std::uint32_t record_count = 0;
  std::uint64_t wid_min = 0;
  std::uint64_t wid_max = 0;
  std::uint64_t lsn_min = 0;  ///< store lsn (logical, monotone) bounds
  std::uint64_t lsn_max = 0;
  std::uint32_t payload_crc = 0;  ///< CRC-32 of the compressed payload
  ActivityBloom bloom = ActivityBloom::sized_for(0);
};

/// Sealed-segment footer: the block zone table plus the per-wid
/// next-is_lsn watermark so reopen can restore instance-local sequence
/// counters without inflating a single block.
struct SegmentFooter {
  std::vector<BlockZone> blocks;
  /// (wid, next is_lsn) pairs as of the end of this segment, ascending wid.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> next_is_lsn;
  std::uint64_t record_count = 0;

  /// Serializes the footer body (excludes the fixed trailer that frames it
  /// in the file; see log/segfmt.h).
  std::string encode() const;

  /// Parses a footer body. Throws IoError on any structural problem.
  static SegmentFooter decode(std::string_view body);
};

/// Sorted, disjoint, inclusive wid intervals — the currency of block
/// pruning. Built from zone wid ranges, then intersected across required
/// activities.
class WidIntervals {
 public:
  /// Adds [lo, hi]; intervals are merged lazily on normalize().
  void add(std::uint64_t lo, std::uint64_t hi);

  /// Sorts and coalesces overlapping/adjacent intervals.
  void normalize();

  bool contains(std::uint64_t wid) const;
  bool empty() const noexcept { return iv_.empty(); }
  bool overlaps(std::uint64_t lo, std::uint64_t hi) const;

  /// Set intersection of two normalized interval lists.
  static WidIntervals intersect(const WidIntervals& a, const WidIntervals& b);

  /// Set union of two normalized interval lists.
  static WidIntervals unite(const WidIntervals& a, const WidIntervals& b);

  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& intervals()
      const noexcept {
    return iv_;
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv_;
};

}  // namespace wflog
