#include "log/zonemap.h"

#include <algorithm>

#include "log/wire.h"

namespace wflog {
namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ----- ActivityBloom --------------------------------------------------------

ActivityBloom::ActivityBloom(std::size_t num_words)
    : words_(num_words, 0), bit_mask_(num_words * 64 - 1) {}

ActivityBloom ActivityBloom::sized_for(std::size_t distinct) {
  const std::size_t bits = next_pow2(std::max<std::size_t>(64, distinct * 16));
  return ActivityBloom(bits / 64);
}

ActivityBloom ActivityBloom::from_words(std::vector<std::uint64_t> words) {
  if (words.empty() || (words.size() & (words.size() - 1)) != 0) {
    throw IoError("zonemap: bloom word count must be a nonzero power of two");
  }
  ActivityBloom b(words.size());
  b.words_ = std::move(words);
  return b;
}

void ActivityBloom::add(std::string_view activity) {
  const std::uint64_t h1 = fnv1a64(activity);
  const std::uint64_t h2 = splitmix64(h1) | 1;  // odd: full-period stride
  for (unsigned i = 0; i < kHashes; ++i) {
    const std::uint64_t bit = (h1 + i * h2) & bit_mask_;
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
}

bool ActivityBloom::may_contain(std::string_view activity) const {
  const std::uint64_t h1 = fnv1a64(activity);
  const std::uint64_t h2 = splitmix64(h1) | 1;
  for (unsigned i = 0; i < kHashes; ++i) {
    const std::uint64_t bit = (h1 + i * h2) & bit_mask_;
    if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

// ----- SegmentFooter --------------------------------------------------------

std::string SegmentFooter::encode() const {
  std::string out;
  wire::put_u64(out, record_count);
  wire::put_u32(out, static_cast<std::uint32_t>(blocks.size()));
  for (const BlockZone& z : blocks) {
    wire::put_u64(out, z.file_offset);
    wire::put_u32(out, z.compressed_size);
    wire::put_u32(out, z.uncompressed_size);
    wire::put_u32(out, z.codec);
    wire::put_u32(out, z.record_count);
    wire::put_u64(out, z.wid_min);
    wire::put_u64(out, z.wid_max);
    wire::put_u64(out, z.lsn_min);
    wire::put_u64(out, z.lsn_max);
    wire::put_u32(out, z.payload_crc);
    const auto& words = z.bloom.words();
    wire::put_u32(out, static_cast<std::uint32_t>(words.size()));
    for (const std::uint64_t w : words) wire::put_u64(out, w);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(next_is_lsn.size()));
  for (const auto& [wid, next] : next_is_lsn) {
    wire::put_u64(out, wid);
    wire::put_u64(out, next);
  }
  return out;
}

SegmentFooter SegmentFooter::decode(std::string_view body) {
  wire::Reader r(body);
  SegmentFooter f;
  f.record_count = r.u64();
  const std::uint32_t num_blocks = r.u32();
  // Each block entry is at least 60 bytes; reject counts the body cannot
  // possibly hold before reserving memory for them.
  if (num_blocks > body.size() / 60) {
    throw IoError("zonemap: footer block count " + std::to_string(num_blocks) +
                  " exceeds body capacity");
  }
  f.blocks.reserve(num_blocks);
  for (std::uint32_t i = 0; i < num_blocks; ++i) {
    BlockZone z;
    z.file_offset = r.u64();
    z.compressed_size = r.u32();
    z.uncompressed_size = r.u32();
    z.codec = r.u32();
    z.record_count = r.u32();
    z.wid_min = r.u64();
    z.wid_max = r.u64();
    z.lsn_min = r.u64();
    z.lsn_max = r.u64();
    z.payload_crc = r.u32();
    const std::uint32_t num_words = r.u32();
    if (num_words > r.remaining() / 8) {
      throw IoError("zonemap: bloom word count exceeds footer body");
    }
    std::vector<std::uint64_t> words;
    words.reserve(num_words);
    for (std::uint32_t w = 0; w < num_words; ++w) words.push_back(r.u64());
    z.bloom = ActivityBloom::from_words(std::move(words));
    f.blocks.push_back(std::move(z));
  }
  const std::uint32_t num_watermarks = r.u32();
  if (num_watermarks > r.remaining() / 16) {
    throw IoError("zonemap: watermark count exceeds footer body");
  }
  f.next_is_lsn.reserve(num_watermarks);
  for (std::uint32_t i = 0; i < num_watermarks; ++i) {
    const std::uint64_t wid = r.u64();
    const std::uint64_t next = r.u64();
    f.next_is_lsn.emplace_back(wid, next);
  }
  if (!r.done()) {
    throw IoError("zonemap: trailing bytes after footer body");
  }
  return f;
}

// ----- WidIntervals ---------------------------------------------------------

void WidIntervals::add(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) return;
  iv_.emplace_back(lo, hi);
}

void WidIntervals::normalize() {
  if (iv_.empty()) return;
  std::sort(iv_.begin(), iv_.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  merged.push_back(iv_.front());
  for (std::size_t i = 1; i < iv_.size(); ++i) {
    auto& [lo, hi] = iv_[i];
    auto& last = merged.back();
    // Merge overlapping or adjacent (hi + 1 == lo) intervals; the +1 is
    // guarded against wrap at UINT64_MAX.
    if (lo <= last.second || (last.second != UINT64_MAX && lo == last.second + 1)) {
      last.second = std::max(last.second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  iv_ = std::move(merged);
}

bool WidIntervals::contains(std::uint64_t wid) const {
  // First interval with lo > wid; the one before (if any) must cover wid.
  auto it = std::upper_bound(
      iv_.begin(), iv_.end(), wid,
      [](std::uint64_t w, const auto& p) { return w < p.first; });
  if (it == iv_.begin()) return false;
  --it;
  return wid <= it->second;
}

bool WidIntervals::overlaps(std::uint64_t lo, std::uint64_t hi) const {
  auto it = std::upper_bound(
      iv_.begin(), iv_.end(), hi,
      [](std::uint64_t w, const auto& p) { return w < p.first; });
  if (it == iv_.begin()) return false;
  --it;
  return it->second >= lo;
}

WidIntervals WidIntervals::intersect(const WidIntervals& a,
                                     const WidIntervals& b) {
  WidIntervals out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.iv_.size() && j < b.iv_.size()) {
    const auto& [alo, ahi] = a.iv_[i];
    const auto& [blo, bhi] = b.iv_[j];
    const std::uint64_t lo = std::max(alo, blo);
    const std::uint64_t hi = std::min(ahi, bhi);
    if (lo <= hi) out.iv_.emplace_back(lo, hi);
    if (ahi < bhi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

WidIntervals WidIntervals::unite(const WidIntervals& a, const WidIntervals& b) {
  WidIntervals out;
  out.iv_ = a.iv_;
  out.iv_.insert(out.iv_.end(), b.iv_.begin(), b.iv_.end());
  out.normalize();
  return out;
}

}  // namespace wflog
