#pragma once

// Definition 2 well-formedness checks, exposed independently of Log
// construction so tools (the CLI, tests, the simulator's self-checks) can
// report *all* violations of a candidate record set rather than failing on
// the first.

#include <string>
#include <vector>

#include "common/interner.h"
#include "log/record.h"

namespace wflog {

/// Returns a human-readable message per violated condition of Definition 2
/// (empty means well-formed). `records` must be sorted by lsn ascending.
///
/// Checked conditions:
///   (1) lsns form a bijection with 1..|L|;
///   (2) is-lsn(l) = 1  iff  act(l) = START;
///   (3) per-instance is-lsns are consecutive from 1, in lsn order;
///   (4) an END record is the last record of its instance;
///   (+) START/END records carry empty attribute maps (Definition 1 text).
std::vector<std::string> check_well_formed(
    const std::vector<LogRecord>& records, const Interner& interner);

/// Throws ValidationError listing every violation; no-op when well-formed.
void validate_well_formed(const std::vector<LogRecord>& records,
                          const Interner& interner);

}  // namespace wflog
