#pragma once

// Workflow simulator: enacts N instances of a WorkflowModel and emits the
// interleaved, Definition-2-conformant log the paper's query engine runs
// over.
//
// The simulator is the "workflow execution engine" box of the paper's
// Figure 2. Instances are launched with staggered starts and advanced in
// random order (tunable via `interleaving`), so the produced log exhibits
// the cross-instance record interleaving visible in the paper's Figure 3.
// Within an instance, AND-split tokens are advanced in random order too,
// which is what makes the ⊕ (parallel) operator interesting on these logs.

#include "log/builder.h"
#include "workflow/model.h"

namespace wflog {

struct SimOptions {
  std::size_t num_instances = 10;
  std::uint64_t seed = 0x5eed;

  /// Probability that the next record comes from a *different* instance
  /// than the previous one. 0 = instances appear as contiguous blocks;
  /// ~1 = maximal shuffling.
  double interleaving = 0.7;

  /// Fraction of instances that are abandoned before completion (no END
  /// record) — Definition 2 explicitly permits incomplete instances.
  double abandon_probability = 0.0;

  /// Safety bound on records per instance (models may loop).
  std::size_t max_records_per_instance = 10'000;

  /// Validate the produced log against Definition 2 (cheap; disable only
  /// in benchmark loops).
  bool validate = true;
};

/// Runs the simulation and returns the log.
Log simulate(const WorkflowModel& model, const SimOptions& options);

}  // namespace wflog
