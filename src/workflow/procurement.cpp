#include "workflow/procurement.h"

#include <array>
#include <string_view>

namespace wflog {
namespace {

std::int64_t int_attr(const AttrStore& store, const std::string& name,
                      std::int64_t fallback = 0) {
  auto it = store.find(name);
  return it != store.end() && it->second.kind() == ValueKind::kInt
             ? it->second.as_int()
             : fallback;
}

}  // namespace

WorkflowModel procurement_model(const ProcurementOptions& options) {
  WorkflowModel m("procure-to-pay");

  static const std::array<std::string_view, 4> kVendors = {
      "Acme Supplies", "Globex", "Initech", "Umbrella Corp"};

  const auto create_po = m.add_task(
      "CreatePO", {}, [](Rng& rng, const AttrStore&) -> AttrWrites {
        const auto amount =
            static_cast<std::int64_t>(rng.uniform(1, 200)) * 50;
        return {
            {"vendor",
             Value{std::string(kVendors[rng.index(kVendors.size())])}},
            {"poAmount", Value{amount}},
            {"poState", Value{"created"}},
        };
      });

  const auto approve_po =
      m.add_task("ApprovePO", {"vendor", "poAmount"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"poState", Value{"approved"}}};
                 });

  // AND block: goods handling and invoice handling proceed concurrently.
  const auto split = m.add_and_split();
  const double short_ship = options.dispute_rate * 0.6;
  const auto receive_goods = m.add_task(
      "ReceiveGoods", {"poAmount"},
      [short_ship](Rng& rng, const AttrStore& store) -> AttrWrites {
        // Occasionally short-shipped: received value below PO amount.
        const std::int64_t po = int_attr(store, "poAmount");
        const std::int64_t received =
            rng.bernoulli(short_ship)
                ? po - static_cast<std::int64_t>(rng.uniform(1, 5)) * 50
                : po;
        return {{"goodsValue", Value{received}}};
      });
  const auto inspect_goods =
      m.add_task("InspectGoods", {"goodsValue"}, nullptr);
  const double overbill = options.dispute_rate * 0.5;
  const auto receive_invoice = m.add_task(
      "ReceiveInvoice", {"poAmount"},
      [overbill](Rng& rng, const AttrStore& store) -> AttrWrites {
        const std::int64_t po = int_attr(store, "poAmount");
        const std::int64_t billed =
            rng.bernoulli(overbill)
                ? po + static_cast<std::int64_t>(rng.uniform(1, 4)) * 50
                : po;
        return {{"invoiceAmount", Value{billed}}};
      });
  const auto verify_invoice =
      m.add_task("VerifyInvoice", {"invoiceAmount"}, nullptr);
  const auto join = m.add_and_join(2);

  const auto match = m.add_task(
      "MatchThreeWay", {"poAmount", "goodsValue", "invoiceAmount"},
      [](Rng&, const AttrStore& store) -> AttrWrites {
        const bool ok =
            int_attr(store, "poAmount") == int_attr(store, "goodsValue") &&
            int_attr(store, "poAmount") ==
                int_attr(store, "invoiceAmount");
        return {{"matched", Value{ok}}};
      });

  const auto dispute = m.add_task(
      "Dispute", {"poAmount", "invoiceAmount"},
      [](Rng&, const AttrStore& store) -> AttrWrites {
        // Settlement: invoice corrected to the PO amount.
        return {{"invoiceAmount", Value{int_attr(store, "poAmount")}},
                {"goodsValue", Value{int_attr(store, "poAmount")}}};
      });

  const auto approve_payment =
      m.add_task("ApprovePayment", {"poAmount", "matched"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"paymentApproved", Value{true}}};
                 });

  const auto pay = m.add_task(
      "Pay", {"poAmount", "paymentApproved"},
      [](Rng&, const AttrStore& store) -> AttrWrites {
        const std::int64_t n = int_attr(store, "payments") + 1;
        return {{"payments", Value{n}},
                {"paidAmount", Value{int_attr(store, "poAmount")}}};
      });

  const auto close_order =
      m.add_task("CloseOrder", {"payments"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"poState", Value{"closed"}}};
                 });
  const auto finish = m.add_terminal();

  m.set_entry(create_po);
  m.connect(create_po, approve_po);
  m.connect(approve_po, split);
  m.connect(split, receive_goods);
  m.connect(split, receive_invoice);
  m.connect(receive_goods, inspect_goods);
  m.connect(inspect_goods, join);
  m.connect(receive_invoice, verify_invoice);
  m.connect(verify_invoice, join);
  m.connect(join, match);

  // A failed match always goes to dispute (the dispute probability is
  // carried by the short-ship/overbill data rates above); a successful one
  // proceeds to approval — or, rarely, straight to Pay (maverick path).
  auto matched_is = [](bool want) {
    return [want](const AttrStore& s) {
      auto it = s.find("matched");
      return it != s.end() && it->second == Value{want};
    };
  };
  m.connect(match, dispute, 1.0, matched_is(false));
  m.connect(match, approve_payment,
            std::max(0.001, 1.0 - options.maverick_rate), matched_is(true));
  // Maverick path: straight to Pay, skipping approval.
  m.connect(match, pay, std::max(0.001, options.maverick_rate),
            matched_is(true));
  m.connect(dispute, match);

  m.connect(approve_payment, pay);
  m.connect(pay, close_order, 1.0 - options.duplicate_pay_rate);
  m.connect(pay, pay, std::max(0.001, options.duplicate_pay_rate));
  m.connect(close_order, finish);
  return m;
}

Log procurement_log(std::size_t num_instances, std::uint64_t seed,
                    const ProcurementOptions& options) {
  SimOptions sim;
  sim.num_instances = num_instances;
  sim.seed = seed;
  sim.interleaving = 0.75;
  sim.abandon_probability = 0.03;
  return simulate(procurement_model(options), sim);
}

}  // namespace wflog
