#include "workflow/random_model.h"

namespace wflog {

WorkflowModel random_model(const RandomModelOptions& options) {
  Rng rng(options.seed);
  WorkflowModel m("random-" + std::to_string(options.seed));

  auto activity_name = [&options, &rng]() {
    return "A" + std::to_string(rng.index(std::max<std::size_t>(
                     1, options.alphabet_size)));
  };

  ActivityBody body = nullptr;
  if (options.with_attributes) {
    body = [](Rng& r, const AttrStore&) -> AttrWrites {
      return {{"payload",
               Value{static_cast<std::int64_t>(r.uniform(0, 9999))}},
              {"flag", Value{r.bernoulli(0.5)}}};
    };
  }

  // Main chain.
  std::vector<WorkflowModel::NodeId> chain;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options.chain_length);
       ++i) {
    chain.push_back(m.add_task(activity_name(), {}, body));
  }
  const auto finish = m.add_terminal();
  m.set_entry(chain.front());

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto next = i + 1 < chain.size() ? chain[i + 1] : finish;

    if (i + 1 < chain.size() && rng.bernoulli(options.parallel_probability)) {
      // AND block: chain[i] -> split -> {B1, B2} -> join -> next.
      const auto split = m.add_and_split();
      const auto b1 = m.add_task(activity_name(), {}, body);
      const auto b2 = m.add_task(activity_name(), {}, body);
      const auto join = m.add_and_join(2);
      m.connect(chain[i], split);
      m.connect(split, b1);
      m.connect(split, b2);
      m.connect(b1, join);
      m.connect(b2, join);
      m.connect(join, next);
      continue;
    }

    m.connect(chain[i], next);

    if (rng.bernoulli(options.branch_probability)) {
      // XOR side branch: chain[i] -> S -> next.
      const auto side = m.add_task(activity_name(), {}, body);
      m.connect(chain[i], side, 0.5);
      m.connect(side, next);
    }
    if (i > 0 && rng.bernoulli(options.loop_probability)) {
      // Back edge with a modest weight so instances stay finite in
      // expectation.
      m.connect(chain[i], chain[rng.index(i)], 0.25);
    }
  }
  return m;
}

Log random_log(const RandomModelOptions& model_options,
               const SimOptions& sim_options) {
  return simulate(random_model(model_options), sim_options);
}

}  // namespace wflog
