#include "workflow/simulator.h"

#include <algorithm>

#include "common/error.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

using NodeId = WorkflowModel::NodeId;
using NodeKind = WorkflowModel::NodeKind;

/// One running enactment: its attribute store and the set of live tokens.
struct Enactment {
  Wid wid = 0;
  bool started = false;  // START record emitted lazily on first advance
  AttrStore store;
  std::vector<NodeId> tokens;           // node each token sits at
  std::map<NodeId, std::size_t> joins;  // tokens arrived per AND-join
  std::size_t records = 0;
  bool abandoned = false;

  bool done() const noexcept { return tokens.empty(); }
};

class Simulation {
 public:
  Simulation(const WorkflowModel& model, const SimOptions& opts)
      : model_(model), opts_(opts), rng_(opts.seed) {}

  Log run() {
    // Instances are registered up front but their START records are
    // emitted lazily on first advance, so launches stagger naturally with
    // the random advancement order.
    std::vector<Enactment> active;
    active.reserve(opts_.num_instances);
    for (std::size_t i = 0; i < opts_.num_instances; ++i) {
      Enactment e;
      e.tokens.push_back(model_.entry());
      e.abandoned = rng_.bernoulli(opts_.abandon_probability);
      active.push_back(std::move(e));
    }

    std::size_t current = 0;
    while (!active.empty()) {
      // Pick which instance advances: stay on the same one with
      // probability 1 - interleaving.
      if (current >= active.size() || rng_.bernoulli(opts_.interleaving)) {
        current = rng_.index(active.size());
      }
      Enactment& e = active[current];
      step(e);
      if (e.done()) {
        if (!e.abandoned) builder_.end_instance(e.wid);
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(current));
      }
    }
    return opts_.validate ? builder_.build() : builder_.build_unchecked();
  }

 private:
  /// Advances one token of the enactment by one node.
  void step(Enactment& e) {
    if (!e.started) {
      e.wid = builder_.begin_instance();
      e.started = true;
    }
    const std::size_t which = rng_.index(e.tokens.size());
    const NodeId at = e.tokens[which];
    const WorkflowModel::Node& node = model_.node(at);

    switch (node.kind) {
      case NodeKind::kTask: {
        execute_task(e, node);
        advance_token(e, which, pick_transition(e, node));
        break;
      }
      case NodeKind::kXorSplit: {
        advance_token(e, which, pick_transition(e, node));
        break;
      }
      case NodeKind::kAndSplit: {
        // Replace this token by one per outgoing transition.
        if (node.out.empty()) {
          throw Error("simulator: AND-split with no outgoing transitions");
        }
        e.tokens.erase(e.tokens.begin() +
                       static_cast<std::ptrdiff_t>(which));
        for (const WorkflowModel::Transition& t : node.out) {
          e.tokens.push_back(t.target);
        }
        break;
      }
      case NodeKind::kAndJoin: {
        std::size_t& arrived = e.joins[at];
        ++arrived;
        e.tokens.erase(e.tokens.begin() +
                       static_cast<std::ptrdiff_t>(which));
        if (arrived >= node.join_arity) {
          arrived = 0;
          const NodeId next = pick_transition(e, node);
          if (next != WorkflowModel::kNoNode) e.tokens.push_back(next);
        }
        break;
      }
      case NodeKind::kTerminal: {
        e.tokens.erase(e.tokens.begin() +
                       static_cast<std::ptrdiff_t>(which));
        break;
      }
    }

    // Loop safety: runaway instances are force-abandoned (never completed,
    // which Definition 2 allows).
    if (e.records >= opts_.max_records_per_instance) {
      e.tokens.clear();
      e.abandoned = true;
    }
  }

  void execute_task(Enactment& e, const WorkflowModel::Node& node) {
    NamedAttrs in;
    for (const std::string& attr : node.reads) {
      auto it = e.store.find(attr);
      if (it != e.store.end()) in.emplace_back(attr, it->second);
    }
    // `out` holds string_views into `writes`, so `writes` must stay alive
    // until append() has interned the names.
    AttrWrites writes;
    NamedAttrs out;
    if (node.body != nullptr) {
      writes = node.body(rng_, e.store);
      for (auto& [attr, value] : writes) {
        e.store[attr] = value;
        out.emplace_back(attr, std::move(value));
      }
    }
    builder_.append(e.wid, node.activity, in, out);
    ++e.records;
  }

  /// Weighted XOR choice among enabled transitions. A node with no enabled
  /// transition ends the token's path (treated as terminal).
  NodeId pick_transition(Enactment& e, const WorkflowModel::Node& node) {
    double total = 0;
    for (const WorkflowModel::Transition& t : node.out) {
      if (t.guard == nullptr || t.guard(e.store)) total += t.weight;
    }
    if (total <= 0) return WorkflowModel::kNoNode;
    double roll = rng_.real01() * total;
    for (const WorkflowModel::Transition& t : node.out) {
      if (t.guard != nullptr && !t.guard(e.store)) continue;
      roll -= t.weight;
      if (roll <= 0) return t.target;
    }
    return node.out.back().target;
  }

  void advance_token(Enactment& e, std::size_t which, NodeId to) {
    if (to == WorkflowModel::kNoNode) {
      e.tokens.erase(e.tokens.begin() + static_cast<std::ptrdiff_t>(which));
    } else {
      e.tokens[which] = to;
    }
  }

  const WorkflowModel& model_;
  const SimOptions& opts_;
  Rng rng_;
  LogBuilder builder_;
};

}  // namespace

Log simulate(const WorkflowModel& model, const SimOptions& options) {
  if (options.num_instances == 0) {
    throw Error("simulate: num_instances must be >= 1 (logs are nonempty)");
  }
  WFLOG_SPAN(span, "simulate");
  Log log = Simulation(model, options).run();
  WFLOG_TELEMETRY(t) {
    t->sim_instances_total->add(log.wids().size());
    t->sim_records_total->add(log.size());
  }
  if (span.active()) {
    span.arg("instances", static_cast<std::uint64_t>(log.wids().size()));
    span.arg("records", static_cast<std::uint64_t>(log.size()));
    span.arg("seed", static_cast<std::uint64_t>(options.seed));
  }
  return log;
}

}  // namespace wflog
