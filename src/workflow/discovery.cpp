#include "workflow/discovery.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace wflog {

FootprintRelation Footprint::relation(std::size_t i, std::size_t j) const {
  const bool ab = successions(i, j) > 0;
  const bool ba = successions(j, i) > 0;
  if (ab && ba) return FootprintRelation::kParallel;
  if (ab) return FootprintRelation::kCausal;
  if (ba) return FootprintRelation::kInverse;
  return FootprintRelation::kUnrelated;
}

std::size_t Footprint::index_of(std::string_view name) const {
  const auto it = std::find(activities_.begin(), activities_.end(), name);
  return it == activities_.end()
             ? SIZE_MAX
             : static_cast<std::size_t>(it - activities_.begin());
}

std::string Footprint::to_string() const {
  std::size_t width = 2;
  for (const std::string& a : activities_) {
    width = std::max(width, a.size());
  }
  width += 1;
  std::ostringstream os;
  auto pad = [&os, width](std::string_view s) {
    os << s;
    for (std::size_t i = s.size(); i < width; ++i) os << ' ';
  };
  pad("");
  for (const std::string& a : activities_) pad(a);
  os << "\n";
  for (std::size_t i = 0; i < activities_.size(); ++i) {
    pad(activities_[i]);
    for (std::size_t j = 0; j < activities_.size(); ++j) {
      switch (relation(i, j)) {
        case FootprintRelation::kUnrelated:
          pad("#");
          break;
        case FootprintRelation::kCausal:
          pad("->");
          break;
        case FootprintRelation::kInverse:
          pad("<-");
          break;
        case FootprintRelation::kParallel:
          pad("||");
          break;
      }
    }
    os << "\n";
  }
  return os.str();
}

Footprint discover_footprint(const LogIndex& index) {
  const Log& log = index.log();
  Footprint fp;

  // Activity alphabet, sentinels excluded, sorted by name.
  for (Symbol sym : index.activities()) {
    if (sym == log.start_symbol() || sym == log.end_symbol()) continue;
    fp.activities_.emplace_back(log.activity_name(sym));
  }
  std::sort(fp.activities_.begin(), fp.activities_.end());
  const std::size_t n = fp.activities_.size();
  fp.counts_.assign(n * n, 0);

  std::unordered_map<Symbol, std::size_t> by_symbol;
  for (std::size_t i = 0; i < n; ++i) {
    by_symbol[log.activity_symbol(fp.activities_[i])] = i;
  }

  for (Wid wid : index.wids()) {
    const auto& records = index.instance(wid);
    for (std::size_t k = 0; k + 1 < records.size(); ++k) {
      const auto a = by_symbol.find(records[k]->activity);
      const auto b = by_symbol.find(records[k + 1]->activity);
      if (a != by_symbol.end() && b != by_symbol.end()) {
        ++fp.counts_[a->second * n + b->second];
      }
    }
  }
  return fp;
}

WorkflowModel discover_model(const LogIndex& index,
                             const DiscoveryOptions& options) {
  const Log& log = index.log();
  const Footprint fp = discover_footprint(index);
  const std::size_t n = fp.size();

  WorkflowModel model("discovered");
  std::vector<WorkflowModel::NodeId> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i] = model.add_task(fp.activities()[i]);
  }
  const auto terminal = model.add_terminal();

  // Initial/terminal statistics: which activities directly follow START /
  // directly precede END or the end of an incomplete instance.
  std::map<std::size_t, std::size_t> initial_counts;
  std::map<std::size_t, std::size_t> final_counts;
  for (Wid wid : index.wids()) {
    const auto& records = index.instance(wid);
    if (records.size() >= 2) {
      const std::size_t first = fp.index_of(
          log.activity_name(records[1]->activity));
      if (first != SIZE_MAX) ++initial_counts[first];
      // Walk back over END to the last business activity.
      std::size_t last_pos = records.size() - 1;
      if (records[last_pos]->activity == log.end_symbol() && last_pos > 1) {
        --last_pos;
      }
      const std::size_t last = fp.index_of(
          log.activity_name(records[last_pos]->activity));
      if (last != SIZE_MAX) ++final_counts[last];
    }
  }

  // Entry: single initial activity connects directly; several go through a
  // silent XOR split with observed weights.
  if (initial_counts.size() == 1) {
    model.set_entry(tasks[initial_counts.begin()->first]);
  } else if (!initial_counts.empty()) {
    const auto entry = model.add_xor_split();
    for (const auto& [idx, count] : initial_counts) {
      model.connect(entry, tasks[idx], static_cast<double>(count));
    }
    model.set_entry(entry);
  }

  // Transitions: every direct succession above the support threshold,
  // weighted by its frequency; final activities also connect to the
  // terminal, weighted by how often they closed an instance.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t support = fp.successions(i, j);
      if (support >= std::max<std::size_t>(1, options.min_edge_support)) {
        model.connect(tasks[i], tasks[j], static_cast<double>(support));
      }
    }
  }
  for (const auto& [idx, count] : final_counts) {
    model.connect(tasks[idx], terminal, static_cast<double>(count));
  }
  return model;
}

}  // namespace wflog
