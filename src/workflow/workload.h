#pragma once

// Workload presets — the named log-generation recipes the experiment index
// of DESIGN.md §5 refers to. Each bench/test names a preset instead of
// re-deriving parameters, so every experiment is reproducible from its id.

#include <string>
#include <vector>

#include "log/log.h"

namespace wflog {
namespace workload {

/// E1: the paper's Figure 3 log (re-exported from workflow/clinic.h).
Log figure3();

/// E11: clinic referral log with the default anomaly rates.
Log clinic(std::size_t num_instances, std::uint64_t seed = 0x5eed);

/// Procure-to-pay log (AND-parallel three-way match) with default anomaly
/// rates.
Log procurement(std::size_t num_instances, std::uint64_t seed = 0xBEEF);

/// Generic random-process log: `scale` instances of a 12-activity process
/// with branches, loops and AND blocks.
Log random_process(std::size_t num_instances, std::uint64_t seed = 42);

/// A log of `num_instances` instances, each the same strict chain
/// A0 A1 ... A{k-1} repeated `repeats` times — used where benches need
/// precisely known match counts.
Log chain(std::size_t num_instances, std::size_t alphabet,
          std::size_t repeats);

/// Worst-case log for Theorem 1 (E8): one instance of `m` records, all the
/// same activity "t" — every atom match set has size m (minus sentinels).
Log worstcase(std::size_t m);

}  // namespace workload
}  // namespace wflog
