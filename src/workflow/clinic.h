#pragma once

// The medical-clinic referral process of the paper's Example 2, as a
// WorkflowModel, plus the exact 20-record log of Figure 3.
//
// Process (paper, Example 2): a student gets a referral at the college
// clinic (GetRefer: budget/balance fixed per condition), checks in at the
// referred hospital (CheckIn), sees doctors and pays for treatments
// (SeeDoctor / PayTreatment / TakeTreatment, possibly repeatedly), may have
// the referral — including the balance — updated when diagnoses change
// (UpdateRefer), requests reimbursement (GetReimburse), and completes or
// terminates the referral (CompleteRefer / TerminateRefer).
//
// The model deliberately includes low-probability *anomalous* paths the
// paper's motivating queries hunt for — UpdateRefer occurring after
// GetReimburse (the fraud pattern of Example 3) — so analytics examples
// have something to find. Rates are configurable.

#include "workflow/model.h"
#include "workflow/simulator.h"

namespace wflog {

struct ClinicOptions {
  /// Probability that a referral is updated during treatment (legitimate).
  double update_rate = 0.25;
  /// Probability of the anomalous UpdateRefer-after-GetReimburse path.
  double fraud_rate = 0.05;
  /// Probability a student terminates instead of completing.
  double terminate_rate = 0.1;
  /// Expected number of SeeDoctor visits per referral (geometric).
  double mean_visits = 2.0;
};

/// Builds the referral workflow model.
WorkflowModel clinic_model(const ClinicOptions& options = {});

/// Simulates `num_instances` referrals. Convenience wrapper around
/// simulate(clinic_model(), ...).
Log clinic_log(std::size_t num_instances, std::uint64_t seed = 0x5eed,
               const ClinicOptions& options = {});

/// The paper's Figure 3 — the first 20 records of the referral log,
/// reconstructed verbatim (with the paper's "GetReimberse" typo normalized
/// to GetReimburse). Instances 1–3 are all incomplete (no END), as in the
/// figure.
Log figure3_log();

}  // namespace wflog
