#include "workflow/workload.h"

#include "workflow/clinic.h"
#include "workflow/procurement.h"
#include "workflow/random_model.h"

namespace wflog {
namespace workload {

Log figure3() { return figure3_log(); }

Log clinic(std::size_t num_instances, std::uint64_t seed) {
  return clinic_log(num_instances, seed);
}

Log procurement(std::size_t num_instances, std::uint64_t seed) {
  return procurement_log(num_instances, seed);
}

Log random_process(std::size_t num_instances, std::uint64_t seed) {
  RandomModelOptions model;
  model.seed = seed;
  SimOptions sim;
  sim.num_instances = num_instances;
  sim.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  return simulate(random_model(model), sim);
}

Log chain(std::size_t num_instances, std::size_t alphabet,
          std::size_t repeats) {
  LogBuilder b;
  for (std::size_t i = 0; i < num_instances; ++i) {
    const Wid wid = b.begin_instance();
    for (std::size_t r = 0; r < repeats; ++r) {
      for (std::size_t a = 0; a < alphabet; ++a) {
        b.append(wid, "A" + std::to_string(a));
      }
    }
    b.end_instance(wid);
  }
  return b.build();
}

Log worstcase(std::size_t m) {
  LogBuilder b;
  const Wid wid = b.begin_instance();
  for (std::size_t i = 0; i < m; ++i) {
    b.append(wid, "t");
  }
  b.end_instance(wid);
  return b.build();
}

}  // namespace workload
}  // namespace wflog
