#pragma once

// Graphviz (DOT) export of workflow models — the visual the paper's BPMN
// heritage implies. Task nodes render as boxes, AND gateways as diamonds,
// terminals as double circles; XOR edge weights and guard presence are
// annotated on the edges.

#include <string>

#include "workflow/model.h"

namespace wflog {

std::string to_dot(const WorkflowModel& model);

}  // namespace wflog
