#pragma once

// Random workflow model generation, for property-based testing and
// parameterized benchmarks over a space of process shapes.
//
// A generated model is a main chain of task nodes seasoned with XOR
// branches (choice), back edges (loops), AND blocks (parallelism), and
// optional attribute traffic — i.e. the structural repertoire the four
// pattern operators were designed to query.

#include "workflow/model.h"
#include "workflow/simulator.h"

namespace wflog {

struct RandomModelOptions {
  std::size_t alphabet_size = 12;   // distinct activity names A0..A{n-1}
  std::size_t chain_length = 8;     // tasks on the main path
  double branch_probability = 0.3;  // XOR side-branch after a chain task
  double loop_probability = 0.2;    // back edge after a chain task
  double parallel_probability = 0.2;  // AND block inserted in the chain
  bool with_attributes = true;      // tasks write a numeric payload
  std::uint64_t seed = 42;
};

/// Generates a model; the same options yield the same model.
WorkflowModel random_model(const RandomModelOptions& options);

/// random_model + simulate in one call.
Log random_log(const RandomModelOptions& model_options,
               const SimOptions& sim_options);

}  // namespace wflog
