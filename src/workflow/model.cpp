#include "workflow/model.h"

#include <algorithm>

#include "common/error.h"

namespace wflog {

WorkflowModel::NodeId WorkflowModel::add_task(std::string activity,
                                              std::vector<std::string> reads,
                                              ActivityBody body) {
  Node n;
  n.kind = NodeKind::kTask;
  n.activity = std::move(activity);
  n.reads = std::move(reads);
  n.body = std::move(body);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

WorkflowModel::NodeId WorkflowModel::add_xor_split() {
  Node n;
  n.kind = NodeKind::kXorSplit;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

WorkflowModel::NodeId WorkflowModel::add_and_split() {
  Node n;
  n.kind = NodeKind::kAndSplit;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

WorkflowModel::NodeId WorkflowModel::add_and_join(std::size_t arity) {
  Node n;
  n.kind = NodeKind::kAndJoin;
  n.join_arity = arity;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

WorkflowModel::NodeId WorkflowModel::add_terminal() {
  Node n;
  n.kind = NodeKind::kTerminal;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void WorkflowModel::connect(NodeId from, NodeId to, double weight,
                            Guard guard) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw Error("WorkflowModel::connect: node id out of range");
  }
  if (weight <= 0) {
    throw Error("WorkflowModel::connect: weight must be positive");
  }
  nodes_[from].out.push_back(Transition{to, weight, std::move(guard)});
}

std::vector<std::string> WorkflowModel::activities() const {
  std::vector<std::string> names;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kTask) names.push_back(n.activity);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace wflog
