#pragma once

// Process discovery: reconstructing a workflow model from its log — the
// inverse of the simulator, and the classic first consumer of the
// direct-succession statistics that incident patterns compute (count(a . b)
// for all a, b).
//
// Two artifacts:
//  * Footprint — the alpha-algorithm relation matrix over activities:
//      a → b   (causal: a directly precedes b, never the reverse)
//      a ∥ b   (parallel: both directions observed)
//      a # b   (unrelated: neither direction observed)
//  * discover_model() — a heuristic-miner-style WorkflowModel: one task per
//    activity, transitions for every direct succession above a noise
//    threshold (weighted by observed frequency), a silent XOR entry for
//    instances with several initial activities, and a terminal fed by the
//    activities observed last. Simulating the discovered model yields logs
//    whose direct-succession relation is a subset of the original's
//    (property-tested).

#include <string>
#include <vector>

#include "log/index.h"
#include "workflow/model.h"

namespace wflog {

enum class FootprintRelation : std::uint8_t {
  kUnrelated,  // a # b
  kCausal,     // a -> b
  kInverse,    // b -> a
  kParallel,   // a || b
};

class Footprint {
 public:
  /// Activity names in matrix order (sentinels excluded), sorted.
  const std::vector<std::string>& activities() const noexcept {
    return activities_;
  }

  std::size_t size() const noexcept { return activities_.size(); }

  /// Direct-succession count: how often activities()[i] is immediately
  /// followed by activities()[j] within one instance.
  std::size_t successions(std::size_t i, std::size_t j) const {
    return counts_.at(i * activities_.size() + j);
  }

  FootprintRelation relation(std::size_t i, std::size_t j) const;

  /// Index of an activity name; SIZE_MAX when absent.
  std::size_t index_of(std::string_view name) const;

  /// The classic footprint matrix rendering (#, ->, <-, ||).
  std::string to_string() const;

 private:
  friend Footprint discover_footprint(const LogIndex& index);

  std::vector<std::string> activities_;
  std::vector<std::size_t> counts_;  // row-major successions
};

Footprint discover_footprint(const LogIndex& index);

struct DiscoveryOptions {
  /// Drop direct-succession edges observed fewer than this many times
  /// (noise filtering, as in the heuristic miner).
  std::size_t min_edge_support = 1;
};

WorkflowModel discover_model(const LogIndex& index,
                             const DiscoveryOptions& options = {});

}  // namespace wflog
