#pragma once

// A data-centric workflow model — the substrate that generates logs.
//
// The paper's logs come from a production workflow engine; we reconstruct
// the workload (DESIGN.md §2) with a small BPMN-flavoured process model:
// task nodes execute an activity (reading/writing instance attributes,
// which become the record's αin/αout), XOR choices pick one outgoing
// transition by guarded weights, AND splits fork concurrent tokens whose
// interleaving the simulator randomises, AND joins synchronise them, and
// terminal nodes complete the instance.
//
// Activities' effects are plain functions over the instance's attribute
// store, so models express data behaviour directly (see workflow/clinic.cpp
// for the paper's referral process).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/value.h"

namespace wflog {

/// Per-instance attribute state. Ordered map: deterministic αin ordering.
using AttrStore = std::map<std::string, Value>;

/// Named attribute writes produced by executing an activity (αout).
using AttrWrites = std::vector<std::pair<std::string, Value>>;

/// The behaviour of one activity: given the RNG and the current store,
/// produce the writes. The simulator applies them to the store afterwards.
using ActivityBody = std::function<AttrWrites(Rng&, const AttrStore&)>;

/// Guard on a transition; nullptr = always enabled.
using Guard = std::function<bool(const AttrStore&)>;

class WorkflowModel {
 public:
  using NodeId = std::size_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  enum class NodeKind : std::uint8_t {
    kTask,      // executes an activity, then one outgoing transition
    kXorSplit,  // silent exclusive gateway: picks one outgoing transition
    kAndSplit,  // silently forks a token onto every outgoing transition
    kAndJoin,   // waits for `join_arity` tokens, then proceeds
    kTerminal,  // token dies; instance completes when all tokens died
  };

  struct Transition {
    NodeId target = kNoNode;
    double weight = 1.0;
    Guard guard;  // evaluated against the instance store
  };

  struct Node {
    NodeKind kind = NodeKind::kTask;
    std::string activity;        // task nodes only
    std::vector<std::string> reads;  // attributes captured into αin
    ActivityBody body;           // may be null (no writes)
    std::vector<Transition> out;
    std::size_t join_arity = 2;  // AND-join only
  };

  explicit WorkflowModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  NodeId add_task(std::string activity, std::vector<std::string> reads = {},
                  ActivityBody body = nullptr);
  NodeId add_xor_split();
  NodeId add_and_split();
  NodeId add_and_join(std::size_t arity);
  NodeId add_terminal();

  /// Adds an XOR-weighted (optionally guarded) transition.
  void connect(NodeId from, NodeId to, double weight = 1.0,
               Guard guard = nullptr);

  /// Entry node executed right after the START record. Defaults to node 0.
  void set_entry(NodeId entry) { entry_ = entry; }
  NodeId entry() const noexcept { return entry_; }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }

  /// Distinct activity names used by task nodes.
  std::vector<std::string> activities() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  NodeId entry_ = 0;
};

}  // namespace wflog
