#include "workflow/dot.h"

#include <sstream>

namespace wflog {

std::string to_dot(const WorkflowModel& model) {
  using NodeKind = WorkflowModel::NodeKind;
  std::ostringstream os;
  os << "digraph \"" << model.name() << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\"];\n"
     << "  entry [shape=circle, label=\"\", style=filled, fillcolor=black, "
        "width=0.2];\n";

  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    const WorkflowModel::Node& n = model.node(i);
    os << "  n" << i << " ";
    switch (n.kind) {
      case NodeKind::kTask:
        os << "[shape=box, style=rounded, label=\"" << n.activity << "\"]";
        break;
      case NodeKind::kXorSplit:
        os << "[shape=diamond, label=\"x\"]";
        break;
      case NodeKind::kAndSplit:
        os << "[shape=diamond, label=\"+\"]";
        break;
      case NodeKind::kAndJoin:
        os << "[shape=diamond, label=\"+join(" << n.join_arity << ")\"]";
        break;
      case NodeKind::kTerminal:
        os << "[shape=doublecircle, label=\"\", width=0.2]";
        break;
    }
    os << ";\n";
  }

  os << "  entry -> n" << model.entry() << ";\n";
  for (std::size_t i = 0; i < model.num_nodes(); ++i) {
    const WorkflowModel::Node& n = model.node(i);
    for (const WorkflowModel::Transition& t : n.out) {
      os << "  n" << i << " -> n" << t.target;
      std::string label;
      if ((n.kind == NodeKind::kTask || n.kind == NodeKind::kXorSplit) &&
          n.out.size() > 1) {
        std::ostringstream w;
        w.precision(2);
        w << t.weight;
        label = w.str();
      }
      if (t.guard != nullptr) {
        label += label.empty() ? "[guarded]" : " [guarded]";
      }
      if (!label.empty()) os << " [label=\"" << label << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace wflog
