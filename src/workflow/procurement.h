#pragma once

// A second realistic workload: procure-to-pay with a three-way match.
//
// Where the clinic referral process (workflow/clinic.h) is mostly
// sequential with loops, procurement is the canonical *parallel* process:
// after a purchase order is placed, goods receipt and invoice receipt
// happen concurrently (an AND block), then converge on the three-way match
// (PO = goods = invoice) before payment. This makes the ⊕ operator and the
// AND-gateway machinery first-class citizens of a realistic log, and its
// classic fraud patterns differ from the clinic's:
//
//   * maverick payment  — Pay without a prior ApprovePayment
//   * duplicate payment — two Pay records for one order
//   * pay-before-match  — Pay preceding MatchThreeWay
//
// Activities: CreatePO, ApprovePO, ReceiveGoods, InspectGoods,
// ReceiveInvoice, VerifyInvoice, MatchThreeWay, ApprovePayment, Dispute,
// Pay, CloseOrder.

#include "workflow/model.h"
#include "workflow/simulator.h"

namespace wflog {

struct ProcurementOptions {
  /// Probability the three-way match initially fails and goes to Dispute
  /// (after which the invoice is re-verified and matched again).
  double dispute_rate = 0.15;
  /// Probability of the maverick path (Pay skipping ApprovePayment).
  double maverick_rate = 0.04;
  /// Probability of a duplicate Pay after a legitimate one.
  double duplicate_pay_rate = 0.03;
};

WorkflowModel procurement_model(const ProcurementOptions& options = {});

Log procurement_log(std::size_t num_instances, std::uint64_t seed = 0xBEEF,
                    const ProcurementOptions& options = {});

}  // namespace wflog
