#include "workflow/clinic.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace wflog {
namespace {

std::int64_t int_attr(const AttrStore& store, const std::string& name,
                      std::int64_t fallback = 0) {
  auto it = store.find(name);
  return it != store.end() && it->second.kind() == ValueKind::kInt
             ? it->second.as_int()
             : fallback;
}

std::string make_refer_id(Rng& rng) {
  static constexpr char kHex[] = "0123456789abcdefsd";
  std::string id(5, '0');
  for (char& c : id) c = kHex[rng.index(sizeof(kHex) - 1)];
  return id;
}

}  // namespace

WorkflowModel clinic_model(const ClinicOptions& options) {
  WorkflowModel m("clinic-referral");

  static const std::array<std::string_view, 4> kHospitals = {
      "Public Hospital", "People Hospital", "Union Hospital",
      "Provincial Hospital"};
  static const std::array<std::int64_t, 5> kBudgets = {500, 1000, 2000, 5000,
                                                       8000};

  const auto get_refer = m.add_task(
      "GetRefer", {}, [](Rng& rng, const AttrStore&) -> AttrWrites {
        return {
            {"hospital",
             Value{std::string(kHospitals[rng.index(kHospitals.size())])}},
            {"referId", Value{make_refer_id(rng)}},
            {"referState", Value{"start"}},
            {"balance", Value{kBudgets[rng.index(kBudgets.size())]}},
            {"year", Value{static_cast<std::int64_t>(
                         2014 + static_cast<std::int64_t>(rng.index(4)))}},
        };
      });

  const auto check_in =
      m.add_task("CheckIn", {"referId", "referState", "balance"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"referState", Value{"active"}}};
                 });

  const auto see_doctor =
      m.add_task("SeeDoctor", {"referId", "referState"}, nullptr);

  const auto pay_treatment = m.add_task(
      "PayTreatment", {"referId", "referState"},
      [](Rng& rng, const AttrStore& store) -> AttrWrites {
        const std::int64_t k = int_attr(store, "receiptCount") + 1;
        const std::string receipt = "receipt" + std::to_string(k);
        const auto cost =
            static_cast<std::int64_t>(rng.uniform(4, 80)) * 10;
        return {{receipt, Value{cost}},
                {receipt + "State", Value{"active"}},
                {"receiptCount", Value{k}},
                {"spent", Value{int_attr(store, "spent") + cost}}};
      });

  const auto take_treatment =
      m.add_task("TakeTreatment", {"referId"}, nullptr);

  const auto update_refer = m.add_task(
      "UpdateRefer", {"referId", "referState", "balance"},
      [](Rng& rng, const AttrStore& store) -> AttrWrites {
        const std::int64_t old_balance = int_attr(store, "balance", 1000);
        const auto bump = static_cast<std::int64_t>(rng.uniform(1, 6)) * 1000;
        return {{"balance", Value{old_balance + bump}}};
      });

  const auto get_reimburse = m.add_task(
      "GetReimburse",
      {"referState", "balance", "spent"},
      [](Rng&, const AttrStore& store) -> AttrWrites {
        const std::int64_t balance = int_attr(store, "balance", 0);
        const std::int64_t spent = int_attr(store, "spent", 0);
        const std::int64_t reimburse = std::min(balance, spent);
        AttrWrites writes = {{"amount", Value{spent}},
                             {"reimburse", Value{reimburse}},
                             {"balance", Value{balance - reimburse}}};
        const std::int64_t receipts = int_attr(store, "receiptCount");
        for (std::int64_t k = 1; k <= receipts; ++k) {
          writes.emplace_back("receipt" + std::to_string(k) + "State",
                              Value{"complete"});
        }
        return writes;
      });

  const auto complete_refer =
      m.add_task("CompleteRefer", {"referState", "balance"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"referState", Value{"complete"}}};
                 });

  const auto terminate_refer =
      m.add_task("TerminateRefer", {"referId", "referState"},
                 [](Rng&, const AttrStore&) -> AttrWrites {
                   return {{"referState", Value{"terminated"}}};
                 });

  const auto finish = m.add_terminal();

  // Anomalous tail: a referral updated AFTER reimbursement, then reimbursed
  // again — the fraud signature of the paper's motivating query.
  const auto fraud_update = m.add_task(
      "UpdateRefer", {"referId", "referState", "balance"},
      [](Rng& rng, const AttrStore& store) -> AttrWrites {
        const std::int64_t old_balance = int_attr(store, "balance", 0);
        const auto bump = static_cast<std::int64_t>(rng.uniform(2, 9)) * 1000;
        return {{"balance", Value{old_balance + bump}}};
      });
  const auto fraud_reimburse = m.add_task(
      "GetReimburse", {"referState", "balance"},
      [](Rng&, const AttrStore& store) -> AttrWrites {
        const std::int64_t balance = int_attr(store, "balance", 0);
        return {{"reimburse", Value{balance}},
                {"balance", Value{std::int64_t{0}}}};
      });

  // Wiring. Visit loop: SeeDoctor -> {PayTreatment, back, onward}.
  const double visit_again = 1.0 - 1.0 / std::max(1.0, options.mean_visits);
  m.set_entry(get_refer);
  m.connect(get_refer, check_in);
  m.connect(check_in, see_doctor);

  m.connect(see_doctor, pay_treatment, 0.8);
  m.connect(see_doctor, see_doctor, 0.1);
  m.connect(see_doctor, get_reimburse, 0.1,
            [](const AttrStore& s) { return s.contains("spent"); });

  m.connect(pay_treatment, take_treatment, 0.5);
  m.connect(pay_treatment, see_doctor, visit_again);
  m.connect(pay_treatment, update_refer, options.update_rate);
  m.connect(pay_treatment, get_reimburse,
            std::max(0.05, 1.0 - visit_again));

  m.connect(take_treatment, see_doctor, visit_again);
  m.connect(take_treatment, update_refer, options.update_rate);
  m.connect(take_treatment, get_reimburse,
            std::max(0.05, 1.0 - visit_again));

  m.connect(update_refer, see_doctor, 0.6);
  m.connect(update_refer, get_reimburse, 0.4);

  m.connect(get_reimburse, complete_refer,
            std::max(0.0, 1.0 - options.terminate_rate - options.fraud_rate));
  m.connect(get_reimburse, terminate_refer, options.terminate_rate);
  if (options.fraud_rate > 0) {
    m.connect(get_reimburse, fraud_update, options.fraud_rate);
    m.connect(fraud_update, fraud_reimburse);
    m.connect(fraud_reimburse, complete_refer);
  }

  m.connect(complete_refer, finish);
  m.connect(terminate_refer, finish);
  return m;
}

Log clinic_log(std::size_t num_instances, std::uint64_t seed,
               const ClinicOptions& options) {
  SimOptions sim;
  sim.num_instances = num_instances;
  sim.seed = seed;
  sim.abandon_probability = 0.05;
  return simulate(clinic_model(options), sim);
}

Log figure3_log() {
  LogBuilder b;
  const Wid w1 = b.begin_instance(1);  // lsn 1
  const Wid w2 = b.begin_instance(2);  // lsn 2

  b.append(w1, "GetRefer", {},
           {{"hospital", Value{"Public Hospital"}},
            {"referId", Value{"034d1"}},
            {"referState", Value{"start"}},
            {"balance", Value{std::int64_t{1000}}}});  // lsn 3
  b.append(w1, "CheckIn",
           {{"referId", Value{"034d1"}},
            {"referState", Value{"start"}},
            {"balance", Value{std::int64_t{1000}}}},
           {{"referState", Value{"active"}}});  // lsn 4
  b.append(w2, "GetRefer", {},
           {{"hospital", Value{"People Hospital"}},
            {"referId", Value{"022f3"}},
            {"referState", Value{"start"}},
            {"balance", Value{std::int64_t{2000}}}});  // lsn 5

  const Wid w3 = b.begin_instance(3);  // lsn 6
  b.append(w3, "GetRefer", {},
           {{"hospital", Value{"Public Hospital"}},
            {"referId", Value{"048s1"}},
            {"referState", Value{"start"}},
            {"balance", Value{std::int64_t{500}}}});  // lsn 7
  b.append(w2, "CheckIn",
           {{"referId", Value{"022f3"}},
            {"referState", Value{"start"}},
            {"balance", Value{std::int64_t{2000}}}},
           {{"referState", Value{"active"}}});  // lsn 8
  b.append(w1, "SeeDoctor",
           {{"referId", Value{"034d1"}}, {"referState", Value{"active"}}},
           {});  // lsn 9
  b.append(w1, "PayTreatment",
           {{"referId", Value{"034d1"}}, {"referState", Value{"active"}}},
           {{"receipt1", Value{std::int64_t{560}}},
            {"receipt1State", Value{"active"}}});  // lsn 10
  b.append(w1, "SeeDoctor",
           {{"referId", Value{"034d1"}}, {"referState", Value{"active"}}},
           {});  // lsn 11
  b.append(w1, "PayTreatment",
           {{"referId", Value{"034d1"}}, {"referState", Value{"active"}}},
           {{"receipt2", Value{std::int64_t{460}}},
            {"receipt2State", Value{"active"}}});  // lsn 12
  b.append(w2, "SeeDoctor",
           {{"referId", Value{"022f3"}}, {"referState", Value{"active"}}},
           {});  // lsn 13
  b.append(w2, "UpdateRefer",
           {{"referId", Value{"022f3"}},
            {"referState", Value{"active"}},
            {"balance", Value{std::int64_t{2000}}}},
           {{"balance", Value{std::int64_t{5000}}}});  // lsn 14
  b.append(w1, "GetReimburse",
           {{"referState", Value{"active"}},
            {"balance", Value{std::int64_t{1000}}},
            {"receipt1", Value{std::int64_t{560}}},
            {"receipt1State", Value{"active"}},
            {"receipt2", Value{std::int64_t{460}}},
            {"receipt2State", Value{"active"}}},
           {{"amount", Value{std::int64_t{1020}}},
            {"balance", Value{std::int64_t{0}}},
            {"reimburse", Value{std::int64_t{1000}}},
            {"receipt1State", Value{"complete"}},
            {"receipt2State", Value{"complete"}}});  // lsn 15
  b.append(w1, "CompleteRefer",
           {{"referState", Value{"active"}},
            {"balance", Value{std::int64_t{0}}}},
           {{"referState", Value{"complete"}}});  // lsn 16
  b.append(w2, "SeeDoctor",
           {{"referId", Value{"022f3"}}, {"referState", Value{"active"}}},
           {});  // lsn 17
  b.append(w2, "PayTreatment",
           {{"referId", Value{"022f3"}}, {"referState", Value{"active"}}},
           {{"receipt1", Value{std::int64_t{4560}}},
            {"receipt1State", Value{"active"}}});  // lsn 18
  b.append(w2, "TakeTreatment",
           {{"referId", Value{"022f3"}},
            {"receipt1", Value{std::int64_t{4560}}}},
           {});  // lsn 19
  b.append(w2, "GetReimburse",
           {{"referState", Value{"active"}},
            {"balance", Value{std::int64_t{5000}}},
            {"receipt1", Value{std::int64_t{6560}}},
            {"receipt1State", Value{"active"}}},
           {{"amount", Value{std::int64_t{6560}}},
            {"balance", Value{std::int64_t{0}}},
            {"reimburse", Value{std::int64_t{5000}}},
            {"receipt1State", Value{"complete"}}});  // lsn 20

  return b.build();
}

}  // namespace wflog
