// bench_server: closed-loop load generator for wfqd's HTTP layer (E19).
//
// Unlike the other benches this is not a google-benchmark harness: it
// stands up the real server stack (QueryService + HttpServer) in-process
// on an ephemeral port, then drives it with C closed-loop client threads
// (each issues a request, waits for the response, repeats) and reports
// wall-clock throughput and per-request latency percentiles. The sweep
// over worker-pool sizes {1, 4, 8} shows how evaluation concurrency
// scales behind a single listener.
//
//   bench_server [clients] [requests-per-client] [instances]
//     defaults:     8            200                 200
//
// Output, one line per worker count:
//   workers=4 clients=8 requests=1600 errors=0 wall=1.23s
//     throughput=1300 req/s p50=5.91ms p95=8.02ms p99=9.77ms
//
// Repeated-query mode (E20): the same small query set re-issued over and
// over — the workload the cross-request result cache (server/cache.h)
// exists for. Runs the identical closed loop twice, against a cache-off
// and a cache-on server, and reports the p50/throughput ratio:
//
//   bench_server repeat [clients] [requests-per-client] [instances]
//
// Shard-sweep mode (E21): one heavy query, fixed worker pool, sweeping
// the engine's wid-shard count {1, 2, 4, 8} — how scatter/gather
// evaluation (core/shard.h) changes per-request latency behind the
// server. Results are byte-identical across the sweep by construction;
// only the timing moves:
//
//   bench_server shards [clients] [requests-per-client] [instances]
//
// Observability-overhead mode (E22): the same closed loop against three
// otherwise-identical servers — no request observer, observer with the
// access log off (wfqd's default), and observer writing a JSON access
// line per request — reporting the throughput/p50 cost of each step.
// The PR 7 contract is <2% with the access log off:
//
//   bench_server obs [clients] [requests-per-client] [instances]
//
// Standing-query mode (E25): C subscribers hold /subscribe long-polls
// while a producer ingests R matching instances; each incident is pushed
// incrementally to every subscriber. The same fan-out served naively —
// every subscriber re-running the full batch /query per update — is
// measured against the identical final log, and the ratio reported. The
// incremental path does O(delta) work per update; the naive path
// re-evaluates the whole log every time:
//
//   bench_server subscribe [subscribers] [updates] [instances]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/handlers.h"
#include "server/json.h"
#include "server/server.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;
using Clock = std::chrono::steady_clock;

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

struct RunResult {
  std::vector<double> latencies_ms;
  std::size_t errors = 0;
  double wall_s = 0.0;
};

RunResult drive(std::uint16_t port, std::size_t clients,
                std::size_t requests_per_client,
                const std::vector<std::string>& bodies) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> errs(clients, 0);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // No client-side retries: a shed or failed request must count as
        // an error, not be resent and skew the latency distribution.
        server::ClientOptions copts;
        copts.timeout_ms = 30000;
        copts.backoff.max_retries = 0;
        server::HttpClient client("127.0.0.1", port, copts);
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const std::string& body = bodies[i % bodies.size()];
          const auto start = Clock::now();
          const server::ClientResponse resp = client.post("/query", body);
          const auto end = Clock::now();
          if (resp.status != 200) {
            ++errs[c];
            continue;
          }
          lat[c].push_back(
              std::chrono::duration<double, std::milli>(end - start)
                  .count());
        }
      } catch (const std::exception&) {
        ++errs[c];  // connection-level failure kills this client's loop
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult out;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (std::size_t c = 0; c < clients; ++c) {
    out.errors += errs[c];
    out.latencies_ms.insert(out.latencies_ms.end(), lat[c].begin(),
                            lat[c].end());
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return out;
}

void print_run(const char* label, std::size_t workers, std::size_t clients,
               std::size_t total_requests, RunResult& r) {
  const double total = static_cast<double>(r.latencies_ms.size());
  std::printf(
      "%sworkers=%zu clients=%zu requests=%zu errors=%zu wall=%.2fs\n"
      "  throughput=%.0f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
      label, workers, clients, total_requests, r.errors, r.wall_s,
      r.wall_s > 0 ? total / r.wall_s : 0.0,
      percentile(r.latencies_ms, 0.50), percentile(r.latencies_ms, 0.95),
      percentile(r.latencies_ms, 0.99));
}

/// E20: the same small query set re-issued in a closed loop, measured
/// against a cache-off and then a cache-on server (identical otherwise).
int run_repeat_mode(std::size_t clients, std::size_t requests,
                    std::size_t instances) {
  // A mixed-but-small working set: repeats dominate, as in a dashboard
  // or alerting workload re-evaluating fixed patterns.
  const std::vector<std::string> bodies = {
      R"({"query": "CreatePO -> MatchThreeWay", "limit": 0})",
      R"({"query": "CreatePO -> ReceiveGoods -> Pay", "limit": 0})",
      R"({"query": "ApprovePO | Dispute", "limit": 0})",
      R"({"query": "ReceiveGoods & ReceiveInvoice", "limit": 0})",
  };
  const std::size_t workers = 4;
  std::printf("bench_server repeat: procurement(%zu) = %zu records, "
              "%zu distinct queries\n",
              instances, workload::procurement(instances).size(),
              bodies.size());

  std::vector<RunResult> runs;
  for (const bool cache_on : {false, true}) {
    server::ServiceOptions svc;
    svc.cache_bytes = cache_on ? std::size_t{64} << 20 : 0;
    server::ServerOptions opts;
    opts.port = 0;
    opts.threads = workers;
    opts.queue_capacity = 256;
    server::QueryService service(workload::procurement(instances), svc,
                                 opts.drain_cancel, std::nullopt);
    server::Router router;
    service.bind(router);
    server::HttpServer http(std::move(router), std::move(opts));
    service.attach_server(&http);
    http.start();

    drive(http.port(), clients, 2, bodies);  // warm-up (and cache fill)
    RunResult r = drive(http.port(), clients, requests, bodies);
    http.shutdown();
    print_run(cache_on ? "cache=on  " : "cache=off ", workers, clients,
              clients * requests, r);
    runs.push_back(std::move(r));
  }

  const double p50_off = percentile(runs[0].latencies_ms, 0.50);
  const double p50_on = percentile(runs[1].latencies_ms, 0.50);
  const double thr_off =
      runs[0].wall_s > 0
          ? static_cast<double>(runs[0].latencies_ms.size()) / runs[0].wall_s
          : 0.0;
  const double thr_on =
      runs[1].wall_s > 0
          ? static_cast<double>(runs[1].latencies_ms.size()) / runs[1].wall_s
          : 0.0;
  std::printf("cache speedup: p50 %.1fx, throughput %.1fx\n",
              p50_on > 0 ? p50_off / p50_on : 0.0,
              thr_off > 0 ? thr_on / thr_off : 0.0);
  return (runs[0].errors + runs[1].errors) == 0 ? 0 : 1;
}

/// E21: sweep the engine's wid-shard count under a fixed HTTP worker
/// pool. The per-request win is bounded by the machine's cores — on a
/// single-core host the sweep measures scatter overhead, not speedup.
int run_shards_mode(std::size_t clients, std::size_t requests,
                    std::size_t instances) {
  const std::string body =
      R"({"query": "GetRefer -> SeeDoctor -> GetReimburse", "limit": 0})";
  const std::size_t workers = 4;
  std::printf("bench_server shards: clinic(%zu) = %zu records, query %s\n",
              instances, workload::clinic(instances).size(), body.c_str());

  std::size_t errors = 0;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    server::ServiceOptions svc;
    svc.engine.shards = shards;
    server::ServerOptions opts;
    opts.port = 0;
    opts.threads = workers;
    opts.queue_capacity = 256;
    server::QueryService service(workload::clinic(instances), svc,
                                 opts.drain_cancel, std::nullopt);
    server::Router router;
    service.bind(router);
    server::HttpServer http(std::move(router), std::move(opts));
    service.attach_server(&http);
    http.start();

    drive(http.port(), clients, 2, {body});  // warm-up
    RunResult r = drive(http.port(), clients, requests, {body});
    http.shutdown();

    char label[32];
    std::snprintf(label, sizeof(label), "shards=%zu ", shards);
    print_run(label, workers, clients, clients * requests, r);
    errors += r.errors;
  }
  return errors == 0 ? 0 : 1;
}

/// E22: the request-observability overhead. Three servers, identical but
/// for the observer: absent, attached with the access log off (the wfqd
/// default), and attached with a JSON access line per request. The
/// contract from the PR that added the observer is <2% throughput cost
/// with the access log off.
int run_obs_mode(std::size_t clients, std::size_t requests,
                 std::size_t instances) {
  const std::vector<std::string> bodies = {
      R"({"query": "CreatePO -> MatchThreeWay", "limit": 0})",
      R"({"query": "ApprovePO | Dispute", "limit": 0})",
  };
  const std::size_t workers = 4;
  std::printf("bench_server obs: procurement(%zu) = %zu records\n",
              instances, workload::procurement(instances).size());

  struct Config {
    const char* label;
    bool observer;
    bool access_log;
  };
  const Config configs[] = {
      {"observer=off          ", false, false},
      {"observer=on log=off   ", true, false},
      {"observer=on log=file  ", true, true},
  };

  std::size_t errors = 0;
  std::vector<double> throughput;
  for (const Config& cfg : configs) {
    server::ObserverOptions oopts;
    if (cfg.access_log) oopts.access_log_path = "/dev/null";
    std::optional<server::RequestObserver> observer;
    if (cfg.observer) observer.emplace(oopts);

    server::ServiceOptions svc;
    server::ServerOptions opts;
    opts.port = 0;
    opts.threads = workers;
    opts.queue_capacity = 256;
    if (observer.has_value()) opts.observer = &*observer;
    server::QueryService service(workload::procurement(instances), svc,
                                 opts.drain_cancel, std::nullopt);
    server::Router router;
    service.bind(router);
    if (observer.has_value()) service.attach_observer(&*observer);
    server::HttpServer http(std::move(router), std::move(opts));
    service.attach_server(&http);
    http.start();

    drive(http.port(), clients, 2, bodies);  // warm-up
    RunResult r = drive(http.port(), clients, requests, bodies);
    http.shutdown();
    print_run(cfg.label, workers, clients, clients * requests, r);
    errors += r.errors;
    throughput.push_back(
        r.wall_s > 0
            ? static_cast<double>(r.latencies_ms.size()) / r.wall_s
            : 0.0);
  }
  if (throughput[0] > 0) {
    std::printf("overhead vs observer=off: log=off %+.1f%%, log=file "
                "%+.1f%%\n",
                (throughput[1] / throughput[0] - 1.0) * 100.0,
                (throughput[2] / throughput[0] - 1.0) * 100.0);
  }
  return errors == 0 ? 0 : 1;
}

/// E25: incremental push vs naive re-query for a standing-query fan-out.
/// `requests` is the number of ingested updates; every update delivers
/// one incident to each of `clients` subscribers.
int run_subscribe_mode(std::size_t clients, std::size_t requests,
                       std::size_t instances) {
  server::ServiceOptions svc;
  svc.subscribe.max_subscriptions = clients + 4;
  svc.subscribe.pending_cap = requests + 16;
  server::ServerOptions opts;
  opts.port = 0;
  // A long-poll occupies a worker for its whole wait — the pool must be
  // sized above the concurrent subscriber count or the producer starves
  // behind parked polls (the same guidance wfqd's --threads docs give).
  opts.threads = clients + 4;
  opts.queue_capacity = 256;
  server::QueryService service(std::nullopt, svc, opts.drain_cancel,
                               std::nullopt);
  server::Router router;
  service.bind(router);
  server::HttpServer http(std::move(router), std::move(opts));
  service.attach_server(&http);
  http.start();
  const std::uint16_t port = http.port();

  const auto ingest_one = [&](server::HttpClient& c) {
    const server::ClientResponse r = c.post("/ingest", R"({"events": [
      {"op": "begin"}]})");
    const std::int64_t wid =
        server::parse_json(r.body).find("wids")->as_array()[0].as_int();
    c.post("/ingest",
           R"({"events": [{"op": "record", "wid": )" + std::to_string(wid) +
               R"(, "activity": "a"}, {"op": "record", "wid": )" +
               std::to_string(wid) +
               R"(, "activity": "b"}, {"op": "end", "wid": )" +
               std::to_string(wid) + "}]}");
  };

  // Pre-seeded history: the baseline /query has to chew through this on
  // every refresh; the incremental path paid for it once at registration.
  server::HttpClient seed("127.0.0.1", port);
  for (std::size_t i = 0; i < instances; ++i) ingest_one(seed);
  std::printf("bench_server subscribe: history=%zu instances, "
              "subscribers=%zu updates=%zu\n",
              instances, clients, requests);

  // Register every subscriber and ack its replayed history.
  std::vector<std::string> subs(clients);
  std::vector<std::uint64_t> cursors(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    const server::ClientResponse r =
        seed.post("/subscribe", R"({"query": "a -> b"})");
    if (r.status != 201) {
      std::fprintf(stderr, "subscribe failed: %s\n", r.body.c_str());
      return 1;
    }
    subs[c] = server::parse_json(r.body).find("id")->as_string();
    server::HttpClient pc("127.0.0.1", port);
    for (;;) {
      const server::ClientResponse p = pc.get(
          "/subscribe/" + subs[c] + "?after=" + std::to_string(cursors[c]));
      const server::JsonValue v = server::parse_json(p.body);
      cursors[c] = static_cast<std::uint64_t>(
          v.find("next_after")->as_int());
      if (v.find("events")->as_array().empty()) break;
    }
  }

  // Incremental: producer ingests updates while every subscriber drains
  // its push queue via acked long-polls.
  std::atomic<std::size_t> errors{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < clients; ++c) {
    consumers.emplace_back([&, c] {
      try {
        server::HttpClient pc("127.0.0.1", port);
        std::size_t got = 0;
        while (got < requests) {
          const server::ClientResponse p =
              pc.get("/subscribe/" + subs[c] +
                     "?after=" + std::to_string(cursors[c]) +
                     "&wait_ms=2000");
          const server::JsonValue v = server::parse_json(p.body);
          got += v.find("events")->as_array().size();
          cursors[c] = static_cast<std::uint64_t>(
              v.find("next_after")->as_int());
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
    });
  }
  {
    server::HttpClient producer("127.0.0.1", port);
    for (std::size_t i = 0; i < requests; ++i) ingest_one(producer);
  }
  for (std::thread& t : consumers) t.join();
  const double push_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double events =
      static_cast<double>(clients) * static_cast<double>(requests);
  std::printf("incremental: events=%.0f wall=%.2fs delivery=%.0f ev/s "
              "errors=%zu\n",
              events, push_s, push_s > 0 ? events / push_s : 0.0,
              errors.load());

  // Naive: the same fan-out as full re-evaluations of the final log —
  // each subscriber re-runs batch /query once per update.
  RunResult naive =
      drive(port, clients, requests, {R"({"query": "a -> b"})"});
  http.shutdown();
  print_run("naive req ", 4, clients, clients * requests, naive);
  const double naive_s = naive.wall_s;
  if (push_s > 0 && naive_s > 0) {
    std::printf("incremental speedup: %.1fx\n", naive_s / push_s);
  }
  return errors.load() + naive.errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool repeat_mode = argc > 1 && std::string_view(argv[1]) == "repeat";
  const bool shards_mode = argc > 1 && std::string_view(argv[1]) == "shards";
  const bool obs_mode = argc > 1 && std::string_view(argv[1]) == "obs";
  const bool subscribe_mode =
      argc > 1 && std::string_view(argv[1]) == "subscribe";
  if (repeat_mode || shards_mode || obs_mode || subscribe_mode) {
    --argc;
    ++argv;
  }
  const std::size_t clients =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 200;
  const std::size_t instances =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 200;
  if (repeat_mode) return run_repeat_mode(clients, requests, instances);
  if (shards_mode) return run_shards_mode(clients, requests, instances);
  if (obs_mode) return run_obs_mode(clients, requests, instances);
  if (subscribe_mode) return run_subscribe_mode(clients, requests, instances);

  const std::string body =
      R"({"query": "CreatePO -> MatchThreeWay", "limit": 0})";
  std::printf("bench_server: procurement(%zu) = %zu records, query %s\n",
              instances, workload::procurement(instances).size(),
              body.c_str());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    server::ServiceOptions svc;
    server::ServerOptions opts;
    opts.port = 0;
    opts.threads = workers;
    opts.queue_capacity = 256;  // closed loop: never shed at the door
    // Log is move-only; procurement() is seeded, so each sweep
    // re-generates the identical log.
    server::QueryService service(workload::procurement(instances), svc,
                                 opts.drain_cancel, std::nullopt);
    server::Router router;
    service.bind(router);
    server::HttpServer http(std::move(router), std::move(opts));
    service.attach_server(&http);
    http.start();

    // Warm up connections + engine caches outside the measured window.
    drive(http.port(), clients, 2, {body});
    RunResult r = drive(http.port(), clients, requests, {body});
    http.shutdown();

    print_run("", workers, clients, clients * requests, r);
  }
  return 0;
}
