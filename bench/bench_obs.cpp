// E17 — telemetry overhead guard. Three regimes of the same end-to-end
// query:
//
//   Off       — no Telemetry installed: every instrumentation site is one
//               relaxed load + null check. The guarantee under guard: this
//               must stay within noise (<2%) of the pre-telemetry engine
//               (compare against BM_QueryUpdateBeforeReimburse in
//               bench_endtoend, EXPERIMENTS.md E17).
//   Installed — metrics + pipeline-stage spans recorded.
//   TraceNodes— the explain()-grade firehose: a span per operator node per
//               instance. Expected to cost real time; this is the detail
//               level `wfq --trace` opts into.
//
// Also micro-benches the primitives (counter add, histogram observe, span
// open/close) so regressions are attributable.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "obs/telemetry.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& clinic_log() {
  static const Log log = workload::clinic(1000, 0xE2E);
  return log;
}

void BM_QueryTelemetryOff(benchmark::State& state) {
  const Log& log = clinic_log();
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_QueryTelemetryOff);

void BM_QueryTelemetryInstalled(benchmark::State& state) {
  const Log& log = clinic_log();
  const QueryEngine engine(log);
  obs::Telemetry telemetry;
  obs::ScopedTelemetry installed(telemetry);
  for (auto _ : state) {
    const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
    benchmark::DoNotOptimize(r);
    // Keep the span buffers from growing without bound across iterations.
    if (telemetry.tracer.num_spans() > 100000) telemetry.tracer.clear();
  }
  state.counters["spans"] =
      static_cast<double>(telemetry.tracer.num_spans());
}
BENCHMARK(BM_QueryTelemetryInstalled);

void BM_QueryTelemetryTraceNodes(benchmark::State& state) {
  const Log& log = clinic_log();
  const QueryEngine engine(log);
  obs::Telemetry telemetry;
  telemetry.trace_nodes = true;
  obs::ScopedTelemetry installed(telemetry);
  for (auto _ : state) {
    const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
    benchmark::DoNotOptimize(r);
    if (telemetry.tracer.num_spans() > 100000) telemetry.tracer.clear();
  }
}
BENCHMARK(BM_QueryTelemetryTraceNodes);

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("bench_total");
  for (auto _ : state) {
    c->inc();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.histogram("bench_seconds", obs::default_latency_bounds());
  double v = 1e-7;
  for (auto _ : state) {
    h->observe(v);
    v = v < 1.0 ? v * 1.5 : 1e-7;  // sweep the bucket ladder
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanOpenClose(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::Tracer::Span span = tracer.span("bench");
    benchmark::DoNotOptimize(span);
    if (tracer.num_spans() > 1000000) tracer.clear();
  }
}
BENCHMARK(BM_SpanOpenClose);

void BM_InertSpan(benchmark::State& state) {
  // What every WFLOG_SPAN site costs with no telemetry installed.
  for (auto _ : state) {
    WFLOG_SPAN(span, "bench");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_InertSpan);

}  // namespace
