#pragma once

// Shared fixtures for the benchmark harness. Each bench binary regenerates
// one experiment of DESIGN.md §5; workload parameters live here so the
// binaries stay declarative.

#include <benchmark/benchmark.h>

#include "core/synthetic.h"

namespace wflog::bench {

/// Operand lists for the operator micro-benches (E4–E7): n incidents of k
/// records each inside an instance of length `len`.
inline std::pair<IncidentList, IncidentList> operand_lists(std::size_t n,
                                                           std::size_t k,
                                                           std::size_t len) {
  SyntheticIncidentOptions a{n, k, len, 1, 0xAAAA};
  SyntheticIncidentOptions b{n, k, len, 1, 0xBBBB};
  return {synthetic_incidents(a), synthetic_incidents(b)};
}

/// Standard n sweep (Lemma 1 scaling): 2^6 .. 2^12.
inline void lemma1_args(benchmark::internal::Benchmark* b) {
  for (int n = 64; n <= 4096; n *= 4) {
    b->Args({n});
  }
}

}  // namespace wflog::bench
