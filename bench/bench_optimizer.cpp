// E10 — the optimization layers the paper leaves as future work:
//   (a) naive Algorithm 1 operators vs the optimized operator algorithms,
//       end-to-end through the tree evaluator;
//   (b) the cost-based rewriter: planning overhead and net win
//       (optimize+evaluate vs evaluate-as-written).
// Expected shape: optimized operators dominate naive on selective queries;
// rewriting pays for itself on queries with shared subpatterns and is a
// small constant overhead elsewhere.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& clinic400() {
  static const Log log = workload::clinic(400, 0xBEEF);
  return log;
}

const char* kQueries[] = {
    "UpdateRefer -> GetReimburse",
    "SeeDoctor -> (UpdateRefer -> GetReimburse)",
    "(SeeDoctor -> CompleteRefer) | (SeeDoctor -> TerminateRefer)",
    "(SeeDoctor . PayTreatment) & UpdateRefer",
};

void BM_EvalNaiveOperators(benchmark::State& state) {
  const Log& log = clinic400();
  const LogIndex index(log);
  EvalOptions opts;
  opts.use_optimized_operators = false;
  const Evaluator ev(index, opts);
  const PatternPtr p =
      parse_pattern(kQueries[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kQueries[static_cast<std::size_t>(state.range(0))]);
}

void BM_EvalOptimizedOperators(benchmark::State& state) {
  const Log& log = clinic400();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p =
      parse_pattern(kQueries[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kQueries[static_cast<std::size_t>(state.range(0))]);
}

void BM_PlanOnly(benchmark::State& state) {
  const Log& log = clinic400();
  const LogIndex index(log);
  const CostModel model(index);
  const PatternPtr p =
      parse_pattern(kQueries[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const OptimizeResult r = optimize(p, model);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(kQueries[static_cast<std::size_t>(state.range(0))]);
}

void BM_PlanPlusEval(benchmark::State& state) {
  const Log& log = clinic400();
  const LogIndex index(log);
  const CostModel model(index);
  const Evaluator ev(index);
  const PatternPtr p =
      parse_pattern(kQueries[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const OptimizeResult r = optimize(p, model);
    const IncidentSet out = ev.evaluate(*r.pattern);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kQueries[static_cast<std::size_t>(state.range(0))]);
}

void BM_EvalAsWritten(benchmark::State& state) {
  const Log& log = clinic400();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p =
      parse_pattern(kQueries[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(kQueries[static_cast<std::size_t>(state.range(0))]);
}

BENCHMARK(BM_EvalNaiveOperators)->DenseRange(0, 3);
BENCHMARK(BM_EvalOptimizedOperators)->DenseRange(0, 3);
BENCHMARK(BM_PlanOnly)->DenseRange(0, 3);
BENCHMARK(BM_PlanPlusEval)->DenseRange(0, 3);
BENCHMARK(BM_EvalAsWritten)->DenseRange(0, 3);

}  // namespace
