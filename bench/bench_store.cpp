// E18 (EXPERIMENTS.md): the price of durability — LogStore append
// throughput under the three fsync policies. kPerAppend buys "no
// acknowledged record is ever lost" (README, Durability contract) at the
// cost of one fsync per record; kInterval amortizes that over
// fsync_interval_records; kOff leaves durability to the OS page cache.
//
// Each iteration appends one record to a store on the local filesystem
// (temp dir), so absolute numbers track the machine's fsync latency; the
// RATIO between policies is the result.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "log/store.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

fs::path bench_dir(const char* name) {
  return fs::temp_directory_path() /
         (std::string("wflog-bench-store-") + name);
}

void run_append_bench(benchmark::State& state, FsyncPolicy policy,
                      const char* name) {
  const fs::path dir = bench_dir(name);
  fs::remove_all(dir);
  LogStore::Options options;
  options.fsync_policy = policy;
  options.fsync_interval_records = 256;
  LogStore store = LogStore::create(dir, options);
  const Wid w = store.begin_instance();
  for (auto _ : state) {
    store.record(w, "activity");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["records"] =
      static_cast<double>(store.num_records());
  fs::remove_all(dir);
}

void BM_StoreAppendPerAppendFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kPerAppend, "per-append");
}

void BM_StoreAppendIntervalFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kInterval, "interval");
}

void BM_StoreAppendNoFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kOff, "off");
}

BENCHMARK(BM_StoreAppendPerAppendFsync)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreAppendIntervalFsync)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreAppendNoFsync)->Unit(benchmark::kMicrosecond);

/// Reopen cost: recovery streams every segment (CRC-checking each line),
/// so open() scales with store size.
void BM_StoreRecoveryOpen(benchmark::State& state) {
  const fs::path dir = bench_dir("recovery");
  fs::remove_all(dir);
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  {
    LogStore::Options options;
    options.fsync_policy = FsyncPolicy::kOff;  // build the fixture fast
    LogStore store = LogStore::create(dir, options);
    const Wid w = store.begin_instance();
    for (std::size_t i = 2; i < records; ++i) store.record(w, "activity");
    store.end_instance(w);
    store.sync();
  }
  for (auto _ : state) {
    LogStore store = LogStore::open(dir);
    benchmark::DoNotOptimize(store.num_records());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  fs::remove_all(dir);
}

BENCHMARK(BM_StoreRecoveryOpen)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wflog
