// E18 (EXPERIMENTS.md): the price of durability — LogStore append
// throughput under the three fsync policies. kPerAppend buys "no
// acknowledged record is ever lost" (README, Durability contract) at the
// cost of one fsync per record; kInterval amortizes that over
// fsync_interval_records; kOff leaves durability to the OS page cache.
//
// Each iteration appends one record to a store on the local filesystem
// (temp dir), so absolute numbers track the machine's fsync latency; the
// RATIO between policies is the result.
//
// E24: the v1-vs-v2 segment format comparison — bytes on disk after
// writing clinic(n) in each format (`disk_bytes` counter), full-load scan
// throughput, and the zone-map-pruned scan of a selective pattern
// (TerminateRefer, ~10% of instances) against the full-load baseline.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "log/store.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

fs::path bench_dir(const char* name) {
  return fs::temp_directory_path() /
         (std::string("wflog-bench-store-") + name);
}

void replay_record(const Log& log, const LogRecord& l, LogStore& store,
                   std::map<Wid, Wid>& wid_map) {
  const std::string_view activity = log.activity_name(l.activity);
  if (activity == kStartActivity) {
    wid_map[l.wid] = store.begin_instance();
    return;
  }
  const Wid w = wid_map.at(l.wid);
  if (activity == kEndActivity) {
    store.end_instance(w);
    return;
  }
  NamedAttrs in, out;
  for (const AttrEntry& e : l.in) {
    in.emplace_back(log.interner().name(e.attr), e.value);
  }
  for (const AttrEntry& e : l.out) {
    out.emplace_back(log.interner().name(e.attr), e.value);
  }
  store.record(w, activity, in, out);
}

/// Replays `log` through the store's append API. In-order replay keeps the
/// simulator's interleaving (the live-ingest layout); clustered replay
/// groups each instance's records together (the layout of a bulk load of
/// completed instances), which gives blocks narrow wid ranges — the case
/// zone-map pruning is built for.
void replay_into_store(const Log& log, LogStore& store,
                       bool clustered = false) {
  std::map<Wid, Wid> wid_map;  // log wid -> store wid
  if (!clustered) {
    for (const LogRecord& l : log) replay_record(log, l, store, wid_map);
    return;
  }
  std::map<Wid, std::vector<const LogRecord*>> by_wid;
  for (const LogRecord& l : log) by_wid[l.wid].push_back(&l);
  for (const auto& [wid, recs] : by_wid) {
    for (const LogRecord* l : recs) replay_record(log, *l, store, wid_map);
  }
}

std::uintmax_t dir_bytes(const fs::path& dir) {
  std::uintmax_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

/// A clinic(n) store fixture in the given format. block_target_bytes == 0
/// keeps the 64 KiB default (best compression; what the shrink numbers
/// report); the pruning benches pass kPruneBlockTarget so zone maps have
/// instance-level decisions to make on a mid-size fixture.
fs::path build_clinic_store(const char* name, std::size_t instances,
                            SegmentFormat format,
                            std::size_t block_target_bytes = 0,
                            bool clustered = false) {
  const fs::path dir = bench_dir(name);
  fs::remove_all(dir);
  LogStore::Options options;
  options.fsync_policy = FsyncPolicy::kOff;
  options.records_per_segment = 4096;
  options.segment_format = format;
  if (block_target_bytes != 0) options.block_target_bytes = block_target_bytes;
  LogStore store = LogStore::create(dir, options);
  replay_into_store(clinic_log(instances, 0xE24), store, clustered);
  store.sync();
  return dir;
}

void run_append_bench(benchmark::State& state, FsyncPolicy policy,
                      const char* name) {
  const fs::path dir = bench_dir(name);
  fs::remove_all(dir);
  LogStore::Options options;
  options.fsync_policy = policy;
  options.fsync_interval_records = 256;
  LogStore store = LogStore::create(dir, options);
  const Wid w = store.begin_instance();
  for (auto _ : state) {
    store.record(w, "activity");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["records"] =
      static_cast<double>(store.num_records());
  fs::remove_all(dir);
}

void BM_StoreAppendPerAppendFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kPerAppend, "per-append");
}

void BM_StoreAppendIntervalFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kInterval, "interval");
}

void BM_StoreAppendNoFsync(benchmark::State& state) {
  run_append_bench(state, FsyncPolicy::kOff, "off");
}

BENCHMARK(BM_StoreAppendPerAppendFsync)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreAppendIntervalFsync)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreAppendNoFsync)->Unit(benchmark::kMicrosecond);

/// Reopen cost. v1 recovery streams every segment (CRC-checking each
/// line), so open() scales with store size; a sealed v2 segment is
/// admitted from its footer without inflating a block, so open() scales
/// with the number of segments instead.
void run_recovery_bench(benchmark::State& state, SegmentFormat format,
                        const char* name) {
  const fs::path dir = bench_dir(name);
  fs::remove_all(dir);
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  {
    LogStore::Options options;
    options.fsync_policy = FsyncPolicy::kOff;  // build the fixture fast
    options.segment_format = format;
    LogStore store = LogStore::create(dir, options);
    const Wid w = store.begin_instance();
    for (std::size_t i = 2; i < records; ++i) store.record(w, "activity");
    store.end_instance(w);
    store.sync();
  }
  for (auto _ : state) {
    LogStore store = LogStore::open(dir);
    benchmark::DoNotOptimize(store.num_records());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  fs::remove_all(dir);
}

void BM_StoreRecoveryOpenV1(benchmark::State& state) {
  run_recovery_bench(state, SegmentFormat::kV1Jsonl, "recovery-v1");
}

void BM_StoreRecoveryOpenV2(benchmark::State& state) {
  run_recovery_bench(state, SegmentFormat::kV2Blocks, "recovery-v2");
}

BENCHMARK(BM_StoreRecoveryOpenV1)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreRecoveryOpenV2)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ----- E24: v1 vs v2 on clinic(n) ------------------------------------------

/// The pruning benches use fine-grained 2 KiB blocks (~2 instances per
/// block) so zone maps decide at instance granularity; the full-load
/// benches keep the 64 KiB default, which is what the shrink factor is
/// reported at.
constexpr std::size_t kPruneBlockTarget = 2 * 1024;

/// Full-scan load() throughput per format; `disk_bytes` reports the store
/// footprint, so one run yields both the shrink factor and the scan rate.
void run_clinic_load_bench(benchmark::State& state, SegmentFormat format,
                           const char* name,
                           std::size_t block_target_bytes = 0,
                           bool clustered = false) {
  const std::size_t instances = static_cast<std::size_t>(state.range(0));
  const fs::path dir = build_clinic_store(name, instances, format,
                                          block_target_bytes, clustered);
  std::size_t records = 0;
  {
    LogStore store = LogStore::open(dir);
    records = store.num_records();
    for (auto _ : state) {
      const Log log = store.load();
      benchmark::DoNotOptimize(log.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["disk_bytes"] = static_cast<double>(dir_bytes(dir));
  state.counters["records"] = static_cast<double>(records);
  fs::remove_all(dir);
}

void BM_StoreClinicLoadV1(benchmark::State& state) {
  run_clinic_load_bench(state, SegmentFormat::kV1Jsonl, "clinic-v1");
}

void BM_StoreClinicLoadV2(benchmark::State& state) {
  run_clinic_load_bench(state, SegmentFormat::kV2Blocks, "clinic-v2");
}

/// Full-load baseline on the SAME fixture the pruned benches use (2 KiB
/// blocks, clustered layout) — the apples-to-apples denominator for the
/// pruned-scan speedup.
void BM_StoreClinicLoadV2Fine(benchmark::State& state) {
  run_clinic_load_bench(state, SegmentFormat::kV2Blocks, "clinic-v2-fine",
                        kPruneBlockTarget, /*clustered=*/true);
}

/// The zone-map payoff: load only what a selective pattern needs.
/// TerminateRefer ends ~10% of clinic referrals. Pruning is instance-
/// granular (wid intervals), so it is layout-sensitive: the interleaved
/// live-ingest layout gives every block a wide wid range and prunes
/// little, while the clustered bulk-load layout gives narrow ranges and
/// skips most blocks. Both layouts run; compare each against
/// BM_StoreClinicLoadV2 at the same arg for the speedup.
void run_clinic_pruned_bench(benchmark::State& state, bool clustered,
                             const char* name) {
  const std::size_t instances = static_cast<std::size_t>(state.range(0));
  const fs::path dir = build_clinic_store(
      name, instances, SegmentFormat::kV2Blocks, kPruneBlockTarget, clustered);
  std::size_t kept = 0, blocks_read = 0, blocks_skipped = 0;
  {
    LogStore store = LogStore::open(dir);
    for (auto _ : state) {
      const LogStore::PrunedLoad pruned =
          store.load_pruned({"TerminateRefer"});
      kept = pruned.records_kept;
      blocks_read = pruned.blocks_read;
      blocks_skipped = pruned.blocks_skipped;
      benchmark::DoNotOptimize(pruned.log.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(store.num_records()));
  }
  state.counters["records_kept"] = static_cast<double>(kept);
  state.counters["blocks_read"] = static_cast<double>(blocks_read);
  state.counters["blocks_skipped"] = static_cast<double>(blocks_skipped);
  fs::remove_all(dir);
}

void BM_StoreClinicPrunedLoadV2(benchmark::State& state) {
  run_clinic_pruned_bench(state, /*clustered=*/false, "clinic-pruned");
}

void BM_StoreClinicPrunedLoadV2Clustered(benchmark::State& state) {
  run_clinic_pruned_bench(state, /*clustered=*/true, "clinic-pruned-cl");
}

BENCHMARK(BM_StoreClinicLoadV1)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreClinicLoadV2)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreClinicLoadV2Fine)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreClinicPrunedLoadV2)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreClinicPrunedLoadV2Clustered)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wflog
