// E6 — Lemma 1, choice operator ⊗.
//
// Paper claim: O(n1·n2·min(k1,k2)) with duplicate elimination when the
// operands' activity multisets are equal, O(n1+n2) otherwise. Series:
//   * NoDedup            — disjoint operands, linear merge
//   * DedupNaive         — Algorithm 1's pairwise scan (the quadratic bound)
//   * DedupHashed        — the optimized hash-set dedup, O((n1+n2)·k)
// swept over n and over incident size k (the min(k1,k2) factor).
// Expected shape: naive grows ~n²; hashed and no-dedup stay ~linear; cost
// grows with k on the dedup series.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/operators.h"
#include "core/operators_opt.h"

namespace {

using namespace wflog;

/// Overlapping operands: half the incidents shared, so dedup has real work.
std::pair<IncidentList, IncidentList> overlapping_lists(std::size_t n,
                                                        std::size_t k) {
  SyntheticIncidentOptions common{n / 2, k, 8 * n, 1, 0xCCCC};
  SyntheticIncidentOptions only_a{n / 2, k, 8 * n, 1, 0xAAAA};
  SyntheticIncidentOptions only_b{n / 2, k, 8 * n, 1, 0xBBBB};
  IncidentList shared = synthetic_incidents(common);
  IncidentList a = synthetic_incidents(only_a);
  IncidentList b = synthetic_incidents(only_b);
  a.insert(a.end(), shared.begin(), shared.end());
  b.insert(b.end(), shared.begin(), shared.end());
  canonicalize(a);
  canonicalize(b);
  return {a, b};
}

void BM_ChoiceNoDedup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, 8 * n);
  for (auto _ : state) {
    IncidentList out = eval_choice_opt(a, b, /*dedup=*/false);
    benchmark::DoNotOptimize(out);
  }
}

void BM_ChoiceDedupNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto [a, b] = overlapping_lists(n, k);
  for (auto _ : state) {
    IncidentList out = eval_choice_naive(a, b, /*dedup=*/true);
    benchmark::DoNotOptimize(out);
  }
}

void BM_ChoiceDedupHashed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto [a, b] = overlapping_lists(n, k);
  for (auto _ : state) {
    IncidentList out = eval_choice_opt(a, b, /*dedup=*/true);
    benchmark::DoNotOptimize(out);
  }
}

void dedup_args(benchmark::internal::Benchmark* b) {
  for (int n : {64, 256, 1024, 4096}) {
    for (int k : {1, 4}) {
      b->Args({n, k});
    }
  }
}

BENCHMARK(BM_ChoiceNoDedup)->Apply(wflog::bench::lemma1_args);
BENCHMARK(BM_ChoiceDedupNaive)->Apply(dedup_args);
BENCHMARK(BM_ChoiceDedupHashed)->Apply(dedup_args);

}  // namespace
