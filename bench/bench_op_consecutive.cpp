// E4 — Lemma 1, consecutive operator ⊙.
//
// Paper claim: inc_L(p1 ⊙ p2) computable in O(n1·n2), output at most n1·n2.
// Series: naive Algorithm 1 (the paper's bound) vs the optimized
// binary-search evaluator, n ∈ {64, 256, 1024, 4096} singleton incidents in
// an instance of length 4n (sparse adjacency, the common case).
// Expected shape: naive grows ~quadratically in n; optimized ~n log n.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/operators.h"
#include "core/operators_opt.h"

namespace {

using namespace wflog;

void BM_ConsecutiveNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, 4 * n);
  std::size_t out_size = 0;
  for (auto _ : state) {
    IncidentList out = eval_consecutive_naive(a, b);
    out_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["n1"] = static_cast<double>(a.size());
  state.counters["n2"] = static_cast<double>(b.size());
  state.counters["out"] = static_cast<double>(out_size);
}

void BM_ConsecutiveOptimized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, 4 * n);
  std::size_t out_size = 0;
  for (auto _ : state) {
    IncidentList out = eval_consecutive_opt(a, b);
    out_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

// Dense adjacency: instance length == n, so nearly every position pair is
// live; output approaches the Lemma 1 bound regime.
void BM_ConsecutiveDenseNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, n);
  for (auto _ : state) {
    IncidentList out = eval_consecutive_naive(a, b);
    benchmark::DoNotOptimize(out);
  }
}

void BM_ConsecutiveDenseOptimized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, n);
  for (auto _ : state) {
    IncidentList out = eval_consecutive_opt(a, b);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_ConsecutiveNaive)->Apply(wflog::bench::lemma1_args);
BENCHMARK(BM_ConsecutiveOptimized)->Apply(wflog::bench::lemma1_args);
BENCHMARK(BM_ConsecutiveDenseNaive)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_ConsecutiveDenseOptimized)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
