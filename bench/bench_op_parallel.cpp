// E7 — Lemma 1, parallel operator ⊕.
//
// Paper claim: O(n1·n2·(k1+k2)): all pairs tested for record-disjointness,
// each test linear in the incident sizes. Series sweep n and k; the
// "IntervalSeparated" series places the operands in disjoint halves of the
// instance so the optimized interval pre-filter answers each pair in O(1),
// isolating the (k1+k2) factor. Expected shape: time ~ n² for fixed k and
// grows with k on the uniform series; the separated series shows the
// constant-factor win of the interval test.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/operators.h"
#include "core/synthetic.h"

namespace {

using namespace wflog;

void BM_ParallelUniform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto [a, b] = bench::operand_lists(n, k, 16 * n * k);
  std::size_t out_size = 0;
  for (auto _ : state) {
    IncidentList out = eval_parallel_naive(a, b);
    out_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

void BM_ParallelIntervalSeparated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  // Left operand in [1, L], right operand in [L+1, 2L]: every pair is
  // disjoint and the interval filter proves it without scanning members.
  const std::size_t L = 8 * n * k;
  SyntheticIncidentOptions left{n, k, L, 1, 0xAAAA};
  IncidentList a = synthetic_incidents(left);
  SyntheticIncidentOptions right{n, k, L, 1, 0xBBBB};
  IncidentList b_raw = synthetic_incidents(right);
  IncidentList b;
  b.reserve(b_raw.size());
  for (const Incident& o : b_raw) {
    Incident shifted;
    for (IsLsn p : o.positions()) {
      const Incident single =
          Incident::singleton(o.wid(), p + static_cast<IsLsn>(L));
      shifted = shifted.empty() ? single : Incident::merged(shifted, single);
    }
    b.push_back(std::move(shifted));
  }
  canonicalize(b);
  for (auto _ : state) {
    IncidentList out = eval_parallel_naive(a, b);
    benchmark::DoNotOptimize(out);
  }
}

void parallel_args(benchmark::internal::Benchmark* bench) {
  for (int n : {64, 128, 256, 512}) {
    for (int k : {1, 2, 4, 8}) {
      bench->Args({n, k});
    }
  }
}

BENCHMARK(BM_ParallelUniform)->Apply(parallel_args);
BENCHMARK(BM_ParallelIntervalSeparated)->Apply(parallel_args);

}  // namespace
