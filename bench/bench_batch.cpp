// Batch query evaluation (core/batch.h): N overlapping queries in one
// shared pass vs. N independent run() calls. The query families below
// share a long common prefix, so the canonical-key memo (Theorems 2-4)
// evaluates the prefix once per instance instead of once per query.
// Expected shape: batch time approaches (shared work) + N * (distinct
// work); the no-cache variant isolates the partitioning overhead.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& procurement_sized(std::size_t n) {
  static std::map<std::size_t, Log> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, workload::procurement(n, 0xBA7C4)).first;
  }
  return it->second;
}

const Log& clinic_sized(std::size_t n) {
  static std::map<std::size_t, Log> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, workload::clinic(n, 0xBA7C4)).first;
  }
  return it->second;
}

// Eight audit queries over the same six-step procurement prefix: "of
// the orders that went through the full receive-and-verify path, which
// ones then ...?". Left-associative parsing makes the prefix a shared
// subtree, so its canonical key is identical across all eight; the
// suffix atoms (Pay, Dispute, ...) also dedup wherever they repeat.
const std::vector<std::string>& procurement_queries() {
  static const std::string prefix =
      "CreatePO -> ApprovePO -> ReceiveGoods -> InspectGoods -> "
      "ReceiveInvoice -> VerifyInvoice";
  static const std::vector<std::string> queries = {
      prefix + " -> Pay",
      prefix + " -> Dispute",
      prefix + " -> CloseOrder",
      prefix + " -> MatchThreeWay",
      prefix + " -> ApprovePayment",
      prefix + " -> (Pay | Dispute)",
      prefix + " -> (MatchThreeWay -> Pay)",
      prefix + " -> (ApprovePayment & Pay)",
  };
  return queries;
}

const std::vector<std::string>& clinic_queries() {
  static const std::vector<std::string> queries = {
      "GetRefer -> SeeDoctor -> GetReimburse",
      "GetRefer -> SeeDoctor -> PayTreatment",
      "GetRefer -> SeeDoctor -> UpdateRefer",
      "GetRefer -> SeeDoctor -> (UpdateRefer -> GetReimburse)",
      "GetRefer -> SeeDoctor -> (GetReimburse | PayTreatment)",
      "GetRefer -> SeeDoctor -> (UpdateRefer & GetReimburse)",
  };
  return queries;
}

// Both arms run the same front-end per query (parse only; the optimizer
// is disabled so the measured difference is evaluation sharing, not
// rewrite luck). run() and run_batch() then evaluate identically modulo
// the memo.
QueryOptions bench_options() {
  QueryOptions options;
  options.optimize = false;
  return options;
}

void report(benchmark::State& state, const QueryEngine& engine,
            const std::vector<std::string>& queries, bool use_cache) {
  const BatchResult r = engine.run_batch(queries, 1, use_cache);
  state.counters["incidents"] = static_cast<double>(r.total());
  state.counters["cache_hits"] = static_cast<double>(r.cache_hits());
  state.counters["shared_nodes"] =
      static_cast<double>(r.stats.plan.shared_nodes());
}

void run_sequential(benchmark::State& state, const Log& log,
                    const std::vector<std::string>& queries) {
  const QueryEngine engine(log, bench_options());
  std::size_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const std::string& q : queries) {
      const QueryResult r = engine.run(q);
      total += r.total();
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["incidents"] = static_cast<double>(total);
}

void run_batch(benchmark::State& state, const Log& log,
               const std::vector<std::string>& queries, std::size_t threads,
               bool use_cache) {
  const QueryEngine engine(log, bench_options());
  for (auto _ : state) {
    const BatchResult r = engine.run_batch(queries, threads, use_cache);
    benchmark::DoNotOptimize(r);
  }
  report(state, engine, queries, use_cache);
}

void BM_ProcurementSequential8(benchmark::State& state) {
  run_sequential(state, procurement_sized(static_cast<std::size_t>(
                            state.range(0))),
                 procurement_queries());
}

void BM_ProcurementBatch8(benchmark::State& state) {
  run_batch(state,
            procurement_sized(static_cast<std::size_t>(state.range(0))),
            procurement_queries(), 1, true);
}

void BM_ProcurementBatch8NoCache(benchmark::State& state) {
  run_batch(state,
            procurement_sized(static_cast<std::size_t>(state.range(0))),
            procurement_queries(), 1, false);
}

void BM_ProcurementBatch8Threads4(benchmark::State& state) {
  run_batch(state,
            procurement_sized(static_cast<std::size_t>(state.range(0))),
            procurement_queries(), 4, true);
}

void BM_ClinicSequential6(benchmark::State& state) {
  run_sequential(state,
                 clinic_sized(static_cast<std::size_t>(state.range(0))),
                 clinic_queries());
}

void BM_ClinicBatch6(benchmark::State& state) {
  run_batch(state, clinic_sized(static_cast<std::size_t>(state.range(0))),
            clinic_queries(), 1, true);
}

void BM_ClinicBatch6NoCache(benchmark::State& state) {
  run_batch(state, clinic_sized(static_cast<std::size_t>(state.range(0))),
            clinic_queries(), 1, false);
}

// E21: wid-sharded scatter/gather (core/shard.h). One heavy run() and the
// shared batch, each swept over the engine's shard count — results are
// byte-identical across the sweep (shard_test proves it); this measures
// only the latency shape. Speedup is bounded by physical cores.
void run_sharded(benchmark::State& state, const Log& log,
                 std::size_t shards) {
  QueryOptions options = bench_options();
  options.shards = shards;
  const QueryEngine engine(log, options);
  for (auto _ : state) {
    const QueryResult r =
        engine.run("GetRefer -> SeeDoctor -> GetReimburse");
    benchmark::DoNotOptimize(r);
    state.counters["incidents"] = static_cast<double>(r.total());
  }
  state.counters["shards"] = static_cast<double>(engine.shards());
}

void BM_ClinicRunSharded(benchmark::State& state) {
  run_sharded(state, clinic_sized(static_cast<std::size_t>(state.range(0))),
              static_cast<std::size_t>(state.range(1)));
}

void BM_ClinicBatch6Sharded(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  QueryOptions options = bench_options();
  options.shards = static_cast<std::size_t>(state.range(1));
  const QueryEngine engine(log, options);
  for (auto _ : state) {
    const BatchResult r = engine.run_batch(clinic_queries(), 1, true);
    benchmark::DoNotOptimize(r);
  }
  report(state, engine, clinic_queries(), true);
}

void shard_sweep(benchmark::internal::Benchmark* b) {
  for (int n : {1000, 10000}) {
    for (int k : {1, 2, 4, 8}) {
      b->Args({n, k});
    }
  }
}

void instance_sweep(benchmark::internal::Benchmark* b) {
  for (int n : {100, 1000, 10000}) {
    b->Arg(n);
  }
}

BENCHMARK(BM_ProcurementSequential8)->Apply(instance_sweep);
BENCHMARK(BM_ProcurementBatch8)->Apply(instance_sweep);
BENCHMARK(BM_ProcurementBatch8NoCache)->Apply(instance_sweep);
BENCHMARK(BM_ProcurementBatch8Threads4)->Apply(instance_sweep);
BENCHMARK(BM_ClinicSequential6)->Apply(instance_sweep);
BENCHMARK(BM_ClinicBatch6)->Apply(instance_sweep);
BENCHMARK(BM_ClinicBatch6NoCache)->Apply(instance_sweep);
BENCHMARK(BM_ClinicRunSharded)->Apply(shard_sweep);
BENCHMARK(BM_ClinicBatch6Sharded)->Apply(shard_sweep);

}  // namespace
