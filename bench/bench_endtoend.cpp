// E11 — end-to-end ad hoc querying (the paper's §1 motivation): the
// intro's queries over simulated clinic logs, swept over the number of
// workflow instances. Expected shape: per-instance partitioning makes full
// evaluation linear in the instance count for a fixed pattern; exists()
// returns in near-constant time once any early instance matches.

#include <benchmark/benchmark.h>

#include <map>

#include "core/engine.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& clinic_sized(std::size_t n) {
  static std::map<std::size_t, Log> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, workload::clinic(n, 0xE2E)).first;
  }
  return it->second;
}

void BM_IndexBuild(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    LogIndex index(log);
    benchmark::DoNotOptimize(index);
  }
  state.counters["records"] = static_cast<double>(log.size());
}

void BM_QueryUpdateBeforeReimburse(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  const QueryEngine engine(log);
  std::size_t total = 0;
  for (auto _ : state) {
    const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
    total = r.total();
    benchmark::DoNotOptimize(r);
  }
  state.counters["incidents"] = static_cast<double>(total);
}

void BM_QueryFraudSignature(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run("GetReimburse -> UpdateRefer");
    benchmark::DoNotOptimize(r);
  }
}

void BM_QueryHighBalanceByPredicate(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run("GetRefer[out.balance > 5000]");
    benchmark::DoNotOptimize(r);
  }
}

void BM_QueryThreeWaySequential(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r =
        engine.run("SeeDoctor -> (UpdateRefer -> GetReimburse)");
    benchmark::DoNotOptimize(r);
  }
}

void BM_ExistsEarlyExit(benchmark::State& state) {
  const Log& log = clinic_sized(static_cast<std::size_t>(state.range(0)));
  const QueryEngine engine(log);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.exists("UpdateRefer -> GetReimburse"));
  }
}

void instance_sweep(benchmark::internal::Benchmark* b) {
  for (int n : {100, 1000, 10000}) {
    b->Arg(n);
  }
}

BENCHMARK(BM_IndexBuild)->Apply(instance_sweep);
BENCHMARK(BM_QueryUpdateBeforeReimburse)->Apply(instance_sweep);
BENCHMARK(BM_QueryFraudSignature)->Apply(instance_sweep);
BENCHMARK(BM_QueryHighBalanceByPredicate)->Apply(instance_sweep);
BENCHMARK(BM_QueryThreeWaySequential)->Apply(instance_sweep);
BENCHMARK(BM_ExistsEarlyExit)->Apply(instance_sweep);

}  // namespace
