// E8 — Theorem 1: worst-case evaluation is O(m^k).
//
// The paper's adversarial input: pattern ((t ⊕ t) ⊕ t) ⊕ ... (a left-deep
// chain of k parallel operators) over a single-instance log of m records
// all named t. Every leaf matches m records and the j-th ⊕ multiplies the
// intermediate size, so both time and output grow geometrically in k.
// Expected shape: for fixed k, polynomial in m of degree k+1-ish; for
// fixed m, geometric in k. Counters report the incident count actually
// produced (C(m, k+1) under set semantics).

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

PatternPtr parallel_chain(std::size_t k) {
  PatternPtr p = Pattern::atom("t");
  for (std::size_t i = 0; i < k; ++i) {
    p = Pattern::parallel(p, Pattern::atom("t"));
  }
  return p;
}

void BM_WorstCaseParallelChain(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const Log log = workload::worstcase(m);
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parallel_chain(k);
  std::size_t produced = 0;
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    produced = out.total();
    benchmark::DoNotOptimize(out);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["k"] = static_cast<double>(k);
  state.counters["incidents"] = static_cast<double>(produced);
}

// Contrast: the same chain with the sequential operator stays polynomially
// bounded by ordering constraints, showing the blow-up is ⊕-specific.
void BM_WorstCaseSequentialChain(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const Log log = workload::worstcase(m);
  const LogIndex index(log);
  const Evaluator ev(index);
  PatternPtr p = Pattern::atom("t");
  for (std::size_t i = 0; i < k; ++i) {
    p = Pattern::sequential(p, Pattern::atom("t"));
  }
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
}

void worstcase_args(benchmark::internal::Benchmark* b) {
  for (int m : {8, 16, 32}) {
    for (int k : {1, 2, 3}) {
      b->Args({m, k});
    }
  }
  b->Args({64, 1});
  b->Args({64, 2});
}

BENCHMARK(BM_WorstCaseParallelChain)->Apply(worstcase_args);
BENCHMARK(BM_WorstCaseSequentialChain)->Apply(worstcase_args);

}  // namespace
