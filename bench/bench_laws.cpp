// E9 — Theorems 2-5 as optimizations: each law's two sides are
// semantically equal (property-tested in tests/laws_test.cpp) but can cost
// very different amounts; these benches time both sides on a clinic
// workload. Expected shape: the factored/reassociated side wins wherever
// the law removes a repeated sub-evaluation or shrinks intermediates, and
// the winner's identity (not its absolute time) is the reproducible claim.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/parser.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& clinic_log_instance() {
  static const Log log = workload::clinic(400, 0x90D);
  return log;
}

void run_query(benchmark::State& state, const char* text) {
  const Log& log = clinic_log_instance();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parse_pattern(text);
  std::size_t total = 0;
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    total = out.total();
    benchmark::DoNotOptimize(out);
  }
  state.counters["incidents"] = static_cast<double>(total);
}

// Theorem 2 (associativity of ≫): join order against a selective tail.
void BM_T2_LeftDeep(benchmark::State& state) {
  run_query(state, "(SeeDoctor -> SeeDoctor) -> TerminateRefer");
}
void BM_T2_RightDeep(benchmark::State& state) {
  run_query(state, "SeeDoctor -> (SeeDoctor -> TerminateRefer)");
}

// Theorem 3 (commutativity of ⊕): operand order of parallel.
void BM_T3_RareFirst(benchmark::State& state) {
  run_query(state, "UpdateRefer & SeeDoctor");
}
void BM_T3_CommonFirst(benchmark::State& state) {
  run_query(state, "SeeDoctor & UpdateRefer");
}

// Theorem 4 (⊙/≫ interchange): grouping of a mixed temporal chain.
void BM_T4_ConsecutiveFirst(benchmark::State& state) {
  run_query(state, "(GetRefer . CheckIn) -> GetReimburse");
}
void BM_T4_SequentialLast(benchmark::State& state) {
  run_query(state, "GetRefer . (CheckIn -> GetReimburse)");
}

// Theorem 5 (distributivity): factored vs distributed forms.
void BM_T5_Distributed(benchmark::State& state) {
  run_query(state,
            "(SeeDoctor -> CompleteRefer) | (SeeDoctor -> TerminateRefer)");
}
void BM_T5_Factored(benchmark::State& state) {
  run_query(state, "SeeDoctor -> (CompleteRefer | TerminateRefer)");
}

void BM_T5_DistributedParallel(benchmark::State& state) {
  run_query(state,
            "(PayTreatment & CompleteRefer) | (PayTreatment & TerminateRefer)");
}
void BM_T5_FactoredParallel(benchmark::State& state) {
  run_query(state, "PayTreatment & (CompleteRefer | TerminateRefer)");
}

BENCHMARK(BM_T2_LeftDeep);
BENCHMARK(BM_T2_RightDeep);
BENCHMARK(BM_T3_RareFirst);
BENCHMARK(BM_T3_CommonFirst);
BENCHMARK(BM_T4_ConsecutiveFirst);
BENCHMARK(BM_T4_SequentialLast);
BENCHMARK(BM_T5_Distributed);
BENCHMARK(BM_T5_Factored);
BENCHMARK(BM_T5_DistributedParallel);
BENCHMARK(BM_T5_FactoredParallel);

}  // namespace
