// E12 — Algorithm 2's index claim: "an index structure for each workflow
// id and activity is used to generate log records for an activity node in
// constant time". Compares indexed occurrence lookup against the linear
// scan it replaces, over alphabet size (selectivity) and log size.
// Expected shape: indexed lookup ~O(matches); scan ~O(instance length)
// regardless of selectivity.

#include <benchmark/benchmark.h>

#include <map>

#include "core/evaluator.h"
#include "core/parser.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

const Log& chain_log(std::size_t alphabet) {
  static std::map<std::size_t, Log> cache;
  auto it = cache.find(alphabet);
  if (it == cache.end()) {
    // 200 instances, each the alphabet repeated 8 times.
    it = cache.emplace(alphabet, workload::chain(200, alphabet, 8)).first;
  }
  return it->second;
}

void BM_AtomViaIndex(benchmark::State& state) {
  const auto alphabet = static_cast<std::size_t>(state.range(0));
  const Log& log = chain_log(alphabet);
  const LogIndex index(log);
  const Symbol sym = log.activity_symbol("A0");
  std::size_t matches = 0;
  for (auto _ : state) {
    for (Wid wid : index.wids()) {
      const auto& occ = index.occurrences(wid, sym);
      matches += occ.size();
      benchmark::DoNotOptimize(occ);
    }
  }
  state.counters["alphabet"] = static_cast<double>(alphabet);
}

void BM_AtomViaScan(benchmark::State& state) {
  const auto alphabet = static_cast<std::size_t>(state.range(0));
  const Log& log = chain_log(alphabet);
  const Symbol sym = log.activity_symbol("A0");
  for (auto _ : state) {
    std::vector<IsLsn> occ;
    for (const LogRecord& l : log) {
      if (l.activity == sym) occ.push_back(l.is_lsn);
    }
    benchmark::DoNotOptimize(occ);
  }
}

void BM_AtomPatternEvaluation(benchmark::State& state) {
  const auto alphabet = static_cast<std::size_t>(state.range(0));
  const Log& log = chain_log(alphabet);
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parse_pattern("A0");
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
}

void BM_NegatedAtomEvaluation(benchmark::State& state) {
  const auto alphabet = static_cast<std::size_t>(state.range(0));
  const Log& log = chain_log(alphabet);
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parse_pattern("!A0");
  for (auto _ : state) {
    const IncidentSet out = ev.evaluate(*p);
    benchmark::DoNotOptimize(out);
  }
}

void alphabet_sweep(benchmark::internal::Benchmark* b) {
  for (int a : {2, 8, 32}) {
    b->Arg(a);
  }
}

BENCHMARK(BM_AtomViaIndex)->Apply(alphabet_sweep);
BENCHMARK(BM_AtomViaScan)->Apply(alphabet_sweep);
BENCHMARK(BM_AtomPatternEvaluation)->Apply(alphabet_sweep);
BENCHMARK(BM_NegatedAtomEvaluation)->Apply(alphabet_sweep);

}  // namespace
