// Extension bench — variables & where clauses (core/bindings.h,
// core/join.h): the cost of binding derivation and existential
// where-filtering on top of plain pattern evaluation. Expected shape:
// the where clause adds work proportional to the number of incidents ×
// assignments per incident; chains have one assignment (cheap), ⊕ patterns
// enumerate bipartitions (bounded, costlier).

#include <benchmark/benchmark.h>

#include "core/bindings.h"
#include "core/engine.h"
#include "workflow/procurement.h"

namespace {

using namespace wflog;

const Log& p2p() {
  static const Log log = procurement_log(300, 0x107);
  return log;
}

void BM_PatternOnly(benchmark::State& state) {
  const Log& log = p2p();
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run("p:Pay -> q:Pay");
    benchmark::DoNotOptimize(r);
  }
}

void BM_PatternPlusWhere(benchmark::State& state) {
  const Log& log = p2p();
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run(
        "p:Pay -> q:Pay where p.out.paidAmount = q.out.paidAmount");
    benchmark::DoNotOptimize(r);
  }
}

void BM_WhereOnParallelPattern(benchmark::State& state) {
  const Log& log = p2p();
  const QueryEngine engine(log);
  for (auto _ : state) {
    const QueryResult r = engine.run(
        "g:ReceiveGoods & i:ReceiveInvoice "
        "where g.out.goodsValue = i.out.invoiceAmount");
    benchmark::DoNotOptimize(r);
  }
}

void BM_DeriveBindingsChain(benchmark::State& state) {
  const Log& log = p2p();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p =
      parse_pattern("c:CreatePO -> m:MatchThreeWay -> y:Pay");
  const IncidentList incidents = ev.evaluate(*p).flatten();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto b = derive_bindings(*p, incidents[i % incidents.size()], index);
    benchmark::DoNotOptimize(b);
    ++i;
  }
  state.counters["incidents"] = static_cast<double>(incidents.size());
}

void BM_DeriveAllBindingsParallel(benchmark::State& state) {
  const Log& log = p2p();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parse_pattern("g:ReceiveGoods & i:ReceiveInvoice");
  const IncidentList incidents = ev.evaluate(*p).flatten();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto all =
        derive_all_bindings(*p, incidents[i % incidents.size()], index);
    benchmark::DoNotOptimize(all);
    ++i;
  }
}

BENCHMARK(BM_PatternOnly);
BENCHMARK(BM_PatternPlusWhere);
BENCHMARK(BM_WhereOnParallelPattern);
BENCHMARK(BM_DeriveBindingsChain);
BENCHMARK(BM_DeriveAllBindingsParallel);

}  // namespace
