// E5 — Lemma 1, sequential operator ≫.
//
// Paper claim: O(n1·n2) time, output at most n1·n2 — and for uniform
// operands the output really is Θ(n1·n2/2), so both evaluators are
// output-bound there. The "selective" series places every right incident
// before every left one (empty output): the binary-search evaluator drops
// to ~n log n while the naive one stays quadratic. Expected shape: naive ≈
// optimized on the dense series; optimized wins by orders of magnitude on
// the selective series.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/operators.h"
#include "core/operators_opt.h"

namespace {

using namespace wflog;

void BM_SequentialDenseNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, 4 * n);
  std::size_t out_size = 0;
  for (auto _ : state) {
    IncidentList out = eval_sequential_naive(a, b);
    out_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

void BM_SequentialDenseOptimized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = bench::operand_lists(n, 1, 4 * n);
  std::size_t out_size = 0;
  for (auto _ : state) {
    IncidentList out = eval_sequential_opt(a, b);
    out_size = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

/// Right operand entirely precedes the left one: zero matches.
std::pair<IncidentList, IncidentList> selective_lists(std::size_t n) {
  SyntheticIncidentOptions left{n, 1, 2 * n, 1, 0xAAAA};
  SyntheticIncidentOptions right{n, 1, 2 * n, 1, 0xBBBB};
  IncidentList a = synthetic_incidents(left);
  IncidentList b = synthetic_incidents(right);
  // Shift left incidents after every right incident.
  IncidentList shifted;
  shifted.reserve(a.size());
  for (const Incident& o : a) {
    shifted.push_back(Incident::singleton(
        o.wid(), o.first() + static_cast<IsLsn>(2 * n)));
  }
  return {shifted, b};
}

void BM_SequentialSelectiveNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = selective_lists(n);
  for (auto _ : state) {
    IncidentList out = eval_sequential_naive(a, b);
    benchmark::DoNotOptimize(out);
  }
}

void BM_SequentialSelectiveOptimized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [a, b] = selective_lists(n);
  for (auto _ : state) {
    IncidentList out = eval_sequential_opt(a, b);
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_SequentialDenseNaive)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SequentialDenseOptimized)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SequentialSelectiveNaive)->Apply(wflog::bench::lemma1_args);
BENCHMARK(BM_SequentialSelectiveOptimized)->Apply(wflog::bench::lemma1_args);

}  // namespace
