// Extension bench — continuous monitoring (core/monitor.h): event
// throughput as a function of registered-query count and pattern shape,
// and the latency comparison the module exists for: incremental delta
// propagation vs re-running batch evaluation after every record.
// Expected shape: per-event cost grows with query count; incremental
// processing of a whole log costs about one batch evaluation, while
// re-evaluate-per-record costs ~records × batch.

#include <benchmark/benchmark.h>

#include <map>

#include "core/engine.h"
#include "core/monitor.h"
#include "workflow/clinic.h"

namespace {

using namespace wflog;

const Log& feed_log() {
  static const Log log = clinic_log(100, 0x707);
  return log;
}

/// Replays `log` through a monitor carrying `nqueries` rules.
void replay(LogMonitor& monitor, const Log& log) {
  std::map<Wid, Wid> wid_map;
  for (const LogRecord& l : log) {
    if (l.activity == log.start_symbol()) {
      wid_map[l.wid] = monitor.begin_instance();
    } else if (l.activity == log.end_symbol()) {
      monitor.end_instance(wid_map.at(l.wid));
    } else {
      monitor.record(wid_map.at(l.wid), log.activity_name(l.activity));
    }
  }
}

const char* kRules[] = {
    "GetReimburse -> UpdateRefer",
    "GetReimburse -> GetReimburse",
    "UpdateRefer . GetReimburse",
    "SeeDoctor -> (UpdateRefer -> GetReimburse)",
    "(CompleteRefer | TerminateRefer)",
    "GetRefer . CheckIn",
    "PayTreatment -> TakeTreatment",
    "SeeDoctor & UpdateRefer",
};

void BM_MonitorReplay(benchmark::State& state) {
  const auto nqueries = static_cast<std::size_t>(state.range(0));
  const Log& log = feed_log();
  for (auto _ : state) {
    MonitorOptions opts;
    opts.keep_records = false;
    LogMonitor monitor(opts);
    for (std::size_t i = 0; i < nqueries; ++i) {
      monitor.add_query(kRules[i % std::size(kRules)]);
    }
    replay(monitor, log);
    benchmark::DoNotOptimize(monitor.drain());
  }
  state.counters["events"] = static_cast<double>(log.size());
  state.counters["queries"] = static_cast<double>(nqueries);
}

// Honest per-record re-evaluation on a small feed (quadratic by design).
void BM_ReevaluatePerRecordSmall(benchmark::State& state) {
  const Log small = clinic_log(10, 0x70);
  const PatternPtr p = parse_pattern("GetReimburse -> UpdateRefer");
  for (auto _ : state) {
    std::vector<LogRecord> records;
    Interner interner = small.interner();
    std::size_t matches = 0;
    for (const LogRecord& l : small) {
      records.push_back(l);
      Log snapshot = Log::from_records_unchecked(records, interner);
      const LogIndex index(snapshot);
      const Evaluator ev(index);
      matches = ev.count(*p);
    }
    benchmark::DoNotOptimize(matches);
  }
}

// Incremental equivalent of the small variant, for the head-to-head.
void BM_MonitorSmall(benchmark::State& state) {
  const Log small = clinic_log(10, 0x70);
  for (auto _ : state) {
    MonitorOptions opts;
    opts.keep_records = false;
    LogMonitor monitor(opts);
    monitor.add_query("GetReimburse -> UpdateRefer");
    replay(monitor, small);
    benchmark::DoNotOptimize(monitor.drain());
  }
}

BENCHMARK(BM_MonitorReplay)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ReevaluatePerRecordSmall);
BENCHMARK(BM_MonitorSmall);

}  // namespace
