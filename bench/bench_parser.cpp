// Parser throughput: the shunting-yard construction of Algorithm 3 over
// growing pattern sizes (k operators), plus predicate parsing. Expected
// shape: linear in pattern length.

#include <benchmark/benchmark.h>

#include <string>

#include "core/parser.h"
#include "core/printer.h"

namespace {

using namespace wflog;

std::string chain_pattern(std::size_t k) {
  std::string text = "A0";
  const char* ops[] = {" -> ", " . ", " | ", " & "};
  for (std::size_t i = 1; i <= k; ++i) {
    text += ops[i % 4];
    text += "A" + std::to_string(i % 7);
  }
  return text;
}

void BM_ParseOperatorChain(benchmark::State& state) {
  const std::string text = chain_pattern(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const PatternPtr p = parse_pattern(text);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * text.size()));
}

void BM_ParseNestedParens(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::string text;
  for (std::size_t i = 0; i < depth; ++i) text += "(a -> ";
  text += "b";
  for (std::size_t i = 0; i < depth; ++i) text += ")";
  for (auto _ : state) {
    const PatternPtr p = parse_pattern(text);
    benchmark::DoNotOptimize(p);
  }
}

void BM_ParseWithPredicates(benchmark::State& state) {
  const std::string text =
      "GetRefer[out.balance > 5000 && in.state = \"start\"] -> "
      "GetReimburse[exists out.amount || !(in.balance < 100)]";
  for (auto _ : state) {
    const PatternPtr p = parse_pattern(text);
    benchmark::DoNotOptimize(p);
  }
}

void BM_PrintRoundTrip(benchmark::State& state) {
  const PatternPtr p = parse_pattern(chain_pattern(64));
  for (auto _ : state) {
    const std::string text = to_text(*p);
    benchmark::DoNotOptimize(text);
  }
}

BENCHMARK(BM_ParseOperatorChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ParseNestedParens)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ParseWithPredicates);
BENCHMARK(BM_PrintRoundTrip);

}  // namespace
