// Extension bench — the linear-pattern fast path (core/linear.h): count()
// and exists() for temporal chains via occurrence-list DP versus full
// incident materialization. Expected shape: materialized counting is bound
// by the (potentially quadratic/cubic) incident-set size; the DP stays
// linear in the occurrence lists, so the gap widens with chain length and
// per-activity frequency.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "core/evaluator.h"
#include "core/linear.h"
#include "core/parser.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

/// chain(instances, alphabet=4, repeats): A0..A3 repeated; occurrence lists
/// of length `repeats` per instance.
const Log& chain_log(std::size_t repeats) {
  static std::map<std::size_t, Log> cache;
  auto it = cache.find(repeats);
  if (it == cache.end()) {
    it = cache.emplace(repeats, workload::chain(50, 4, repeats)).first;
  }
  return it->second;
}

std::string chain_query(std::size_t atoms) {
  std::string q = "A0";
  for (std::size_t i = 1; i < atoms; ++i) {
    q += " -> A" + std::to_string(i % 4);
  }
  return q;
}

void BM_CountMaterialized(benchmark::State& state) {
  const Log& log = chain_log(static_cast<std::size_t>(state.range(0)));
  const LogIndex index(log);
  EvalOptions opts;
  opts.use_linear_fast_path = false;
  const Evaluator ev(index, opts);
  const PatternPtr p =
      parse_pattern(chain_query(static_cast<std::size_t>(state.range(1))));
  std::size_t count = 0;
  for (auto _ : state) {
    count = ev.count(*p);
    benchmark::DoNotOptimize(count);
  }
  state.counters["count"] = static_cast<double>(count);
}

void BM_CountLinearDP(benchmark::State& state) {
  const Log& log = chain_log(static_cast<std::size_t>(state.range(0)));
  const LogIndex index(log);
  const Evaluator ev(index);  // fast path on
  const PatternPtr p =
      parse_pattern(chain_query(static_cast<std::size_t>(state.range(1))));
  std::size_t count = 0;
  for (auto _ : state) {
    count = ev.count(*p);
    benchmark::DoNotOptimize(count);
  }
  state.counters["count"] = static_cast<double>(count);
}

void BM_ExistsMaterialized(benchmark::State& state) {
  const Log& log = chain_log(static_cast<std::size_t>(state.range(0)));
  const LogIndex index(log);
  EvalOptions opts;
  opts.use_linear_fast_path = false;
  const Evaluator ev(index, opts);
  const PatternPtr p =
      parse_pattern(chain_query(static_cast<std::size_t>(state.range(1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.exists(*p));
  }
}

void BM_ExistsLinearGreedy(benchmark::State& state) {
  const Log& log = chain_log(static_cast<std::size_t>(state.range(0)));
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p =
      parse_pattern(chain_query(static_cast<std::size_t>(state.range(1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.exists(*p));
  }
}

void linear_args(benchmark::internal::Benchmark* b) {
  // {repeats per activity, chain length}
  for (int repeats : {4, 16, 64}) {
    for (int atoms : {2, 3, 4}) {
      b->Args({repeats, atoms});
    }
  }
}

// Materialized counting is output-bound (up to ~repeats^atoms incidents per
// instance), so its sweep stops where a single evaluation stays tractable.
void materialized_args(benchmark::internal::Benchmark* b) {
  b->Args({4, 2});
  b->Args({4, 3});
  b->Args({4, 4});
  b->Args({16, 2});
  b->Args({16, 3});
  b->Args({64, 2});
}

BENCHMARK(BM_CountMaterialized)->Apply(materialized_args);
BENCHMARK(BM_CountLinearDP)->Apply(linear_args);
BENCHMARK(BM_ExistsMaterialized)->Apply(materialized_args);
BENCHMARK(BM_ExistsLinearGreedy)->Apply(linear_args);

}  // namespace
